//! Out-of-circuit fixed-point extraction with *bit-identical* semantics to
//! the zkSNARK circuit.
//!
//! Every arithmetic step (feed-forward, averaging, projection, sigmoid,
//! thresholding) uses the same integers and the same floor-division
//! truncations as the gadgets, so `extract_fixed` predicts exactly what the
//! circuit will output — the test suite and the prover's sanity checks rely
//! on this.

use crate::model::{QuantLayer, QuantizedModel};
use alloc::vec;
use alloc::vec::Vec;
use zkrownn_gadgets::fixed::{floor_div, floor_div_pow2, FixedConfig};
use zkrownn_gadgets::sigmoid::sigmoid_fixed_reference;

/// Fixed-point feed-forward through the quantized prefix; returns the
/// activations of the final (watermarked) layer at scale `frac_bits`.
pub fn feed_forward_fixed(model: &QuantizedModel, input: &[i128]) -> Vec<i128> {
    assert_eq!(input.len(), model.input_len, "input length mismatch");
    let f = model.cfg.frac_bits;
    let mut act = input.to_vec();
    for layer in &model.layers {
        act = match layer {
            QuantLayer::Dense {
                in_dim,
                out_dim,
                w,
                b,
            } => {
                assert_eq!(act.len(), *in_dim);
                (0..*out_dim)
                    .map(|o| {
                        let mut acc: i128 = 0;
                        for i in 0..*in_dim {
                            acc += w[o * in_dim + i] * act[i];
                        }
                        floor_div_pow2(acc + (b[o] << f), f)
                    })
                    .collect()
            }
            QuantLayer::ReLU => act.iter().map(|&v| v.max(0)).collect(),
            QuantLayer::Identity => act,
            QuantLayer::MaxPool {
                channels,
                height,
                width,
                size,
                stride,
            } => zkrownn_gadgets::maxpool::maxpool2d_reference(
                &act, *channels, *height, *width, *size, *stride,
            ),
            QuantLayer::Conv { shape, w, b } => {
                let raw = zkrownn_gadgets::conv::conv3d_reference(&act, w, shape);
                let (oh, ow) = (shape.out_height(), shape.out_width());
                raw.iter()
                    .enumerate()
                    .map(|(idx, &v)| {
                        let oc = idx / (oh * ow);
                        floor_div_pow2(v + (b[oc] << f), f)
                    })
                    .collect()
            }
        };
    }
    act
}

/// Result of a fixed-point extraction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedExtraction {
    /// Mean (or summed, when averaging is folded) activations.
    pub mu: Vec<i128>,
    /// Projections `µ·A` at scale `frac_bits`.
    pub projections: Vec<i128>,
    /// Decoded watermark bits.
    pub decoded: Vec<bool>,
    /// Number of bit errors against the signature.
    pub errors: usize,
}

/// Full fixed-point extraction pipeline (Algorithm 1, out of circuit).
///
/// When `fold_average` is set, the `1/T` averaging is assumed to have been
/// folded into `projection` and the raw activation *sums* are projected —
/// the optimization the end-to-end CNN circuit uses.
pub fn extract_fixed(
    model: &QuantizedModel,
    triggers: &[Vec<i128>],
    projection: &[i128],
    signature: &[bool],
    fold_average: bool,
    cfg: &FixedConfig,
) -> FixedExtraction {
    assert!(!triggers.is_empty(), "no trigger inputs");
    let m = model.output_len();
    let n = signature.len();
    assert_eq!(projection.len(), m * n, "projection shape mismatch");

    // Σ activations
    let mut sums = vec![0i128; m];
    for t in triggers {
        let a = feed_forward_fixed(model, t);
        for (s, v) in sums.iter_mut().zip(&a) {
            *s += *v;
        }
    }
    let mu: Vec<i128> = if fold_average {
        sums
    } else {
        sums.iter()
            .map(|&s| floor_div(s, triggers.len() as i128))
            .collect()
    };

    // project and rescale
    let f = cfg.frac_bits;
    let projections: Vec<i128> = (0..n)
        .map(|j| {
            let mut acc = 0i128;
            for (i, &m_i) in mu.iter().enumerate() {
                acc += m_i * projection[i * n + j];
            }
            floor_div_pow2(acc, f)
        })
        .collect();

    // sigmoid + hard threshold at 0.5
    let half = 1i128 << (f - 1);
    let decoded: Vec<bool> = projections
        .iter()
        .map(|&z| sigmoid_fixed_reference(z, cfg) >= half)
        .collect();
    let errors = decoded
        .iter()
        .zip(signature)
        .filter(|(a, b)| a != b)
        .count();
    FixedExtraction {
        mu,
        projections,
        decoded,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QuantizedModel;
    use rand::SeedableRng;
    use zkrownn_nn::{Dense, Layer, Network, Tensor};

    #[test]
    fn fixed_feedforward_tracks_float() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(271);
        let net = Network::new(vec![Layer::Dense(Dense::new(10, 6, &mut rng)), Layer::ReLU]);
        let cfg = FixedConfig::default();
        let q = QuantizedModel::from_network(&net, 1, 10, &cfg);
        let x: Vec<f32> = (0..10).map(|i| (i as f32 - 5.0) / 3.0).collect();
        let x_fixed: Vec<i128> = x.iter().map(|&v| cfg.encode(v as f64)).collect();
        let got = feed_forward_fixed(&q, &x_fixed);
        let want = net.forward(&Tensor::from_vec(&[10], x));
        for (g, w) in got.iter().zip(want.data()) {
            assert!(
                (cfg.decode(*g) - *w as f64).abs() < 1e-2,
                "{} vs {w}",
                cfg.decode(*g)
            );
        }
    }

    #[test]
    fn folded_and_unfolded_extraction_agree_approximately() {
        // with projection pre-divided by T, folding the average must give
        // the same decisions (up to rounding at the decision boundary)
        let mut rng = rand::rngs::StdRng::seed_from_u64(272);
        let net = Network::new(vec![Layer::Dense(Dense::new(6, 4, &mut rng))]);
        let cfg = FixedConfig::default();
        let q = QuantizedModel::from_network(&net, 0, 6, &cfg);
        let t_count = 4usize;
        let triggers: Vec<Vec<i128>> = (0..t_count)
            .map(|k| (0..6).map(|i| cfg.encode((i + k) as f64 / 5.0)).collect())
            .collect();
        let proj_f: Vec<f64> = (0..4 * 3).map(|i| (i as f64 - 6.0) / 4.0).collect();
        let proj: Vec<i128> = proj_f.iter().map(|&v| cfg.encode(v)).collect();
        let proj_folded: Vec<i128> = proj_f
            .iter()
            .map(|&v| cfg.encode(v / t_count as f64))
            .collect();
        let sig = vec![true, false, true];
        let a = extract_fixed(&q, &triggers, &proj, &sig, false, &cfg);
        let b = extract_fixed(&q, &triggers, &proj_folded, &sig, true, &cfg);
        assert_eq!(a.decoded, b.decoded);
    }
}
