//! Versioned wire formats for everything the three ZKROWNN parties exchange.
//!
//! Setup, proving and verification are performed by *different* parties: a
//! trusted authority publishes keys, the model owner ships a compact claim,
//! and any third party verifies it. Every object that crosses a process
//! boundary therefore implements [`Artifact`] — a self-identifying envelope
//! (magic bytes, artifact kind, format version, payload length, checksum)
//! around a canonical payload encoding:
//!
//! | artifact | payload |
//! |---|---|
//! | [`OwnershipStatement`] | public circuit description: quantized model, BER threshold, watermark dimensions |
//! | [`OwnershipProof`](crate::OwnershipProof) | circuit id ‖ verdict ‖ 128-byte Groth16 proof |
//! | [`VerifyingKey`] | compressed verification points |
//! | [`ProvingKey`] | uncompressed prover queries |
//! | [`SignedClaim`](crate::SignedClaim) | nested statement + proof artifacts |
//!
//! Artifacts are tied together by a [`CircuitId`]: the SHA-256 digest of
//! the circuit's *setup-mode synthesis trace* — every allocation and
//! compacted constraint the witness-free setup driver records, and nothing
//! else (in particular no assignment values, which the setup driver never
//! evaluates). Two same-shaped models synthesize the same trace, so they
//! share a `CircuitId` and hence trusted-setup keys; a [`crate::KeyRegistry`]
//! (see [`crate::registry`]) uses the id to cache pairing precomputation.
//!
//! Any single corrupted byte on the wire is rejected: header corruption
//! trips the magic/kind/version/length checks, payload corruption trips the
//! trailing checksum, and points that survive both are still validated on
//! the curve.

use crate::model::{QuantLayer, QuantizedModel};
use alloc::format;
use alloc::string::String;
use alloc::vec::Vec;
use zkrownn_ff::{Fr, PrimeField};
use zkrownn_gadgets::conv::ConvShape;
use zkrownn_gadgets::fixed::FixedConfig;
use zkrownn_groth16::{ProvingKey, VerifyingKey};
use zkrownn_r1cs::{Circuit, SetupSynthesizer, ShapeSink};

// ---------------------------------------------------------------------------
// SHA-256 (the content digest behind CircuitId and the envelope checksum)
// ---------------------------------------------------------------------------

// The implementation lives in `zkrownn-store` (which sits *below* this crate
// in the dependency graph and needs the hash for segment checksums); it is
// re-exported here so existing `zkrownn::artifact::sha256` callers — and the
// CircuitId / envelope-checksum code below — are unaffected by the move.
pub use zkrownn_store::sha::{sha256, Sha256};

/// A [`ShapeSink`] hashing the canonical setup-mode synthesis trace —
/// allocation events and compacted constraints — into SHA-256. The preimage
/// opens with its own domain tag, deliberately *not* [`WIRE_VERSION`], so
/// envelope-format bumps never orphan existing trusted-setup keys: the tag
/// revs only when the trace encoding itself changes.
pub struct TraceHasher(Sha256);

/// Domain separator for the synthesis-trace digest behind [`CircuitId`].
pub const TRACE_DOMAIN_TAG: &[u8] = b"zkrownn.trace.v1";

impl Default for TraceHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceHasher {
    /// A fresh trace hasher (domain tag pre-absorbed).
    pub fn new() -> Self {
        let mut state = Sha256::new();
        state.update(TRACE_DOMAIN_TAG);
        Self(state)
    }

    /// The digest of everything absorbed so far.
    pub fn finalize(self) -> [u8; 32] {
        self.0.finalize()
    }
}

impl ShapeSink for TraceHasher {
    fn absorb(&mut self, bytes: &[u8]) {
        self.0.update(bytes);
    }
}

// ---------------------------------------------------------------------------
// CircuitId
// ---------------------------------------------------------------------------

/// Digest of a circuit's setup-mode synthesis trace.
///
/// Computed by driving the circuit through the witness-free
/// `SetupSynthesizer` and hashing every structural event it records —
/// allocations and compacted constraints, coefficients included. The id is
/// therefore derived from the *synthesized constraint system itself*, not
/// from a side-channel description of it: "same shape ⇒ same circuit ⇒
/// same trusted-setup keys" holds by construction, and no assignment value
/// (model parameters included — they are public *inputs*, not structure)
/// can influence it, because the setup driver never evaluates a value
/// closure. Namespace labels are excluded, so renaming debug scopes keeps
/// keys valid. The id doubles as the cache key for prepared verifying keys
/// in a [`crate::KeyRegistry`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CircuitId([u8; 32]);

impl CircuitId {
    /// Derives the id of `circuit` by hashing its setup-mode synthesis
    /// trace. Never evaluates a value closure, so it works on witness-less
    /// circuits (and is what makes two same-shaped circuits provably share
    /// keys).
    pub fn of_circuit<C: Circuit<Fr>>(circuit: &C) -> Self {
        let mut cs = SetupSynthesizer::with_sink(TraceHasher::new());
        circuit
            .synthesize(&mut cs)
            .expect("setup-mode synthesis evaluates no value closure and cannot fail");
        Self(cs.into_sink().finalize())
    }

    /// Wraps raw digest bytes (e.g. read off the wire).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Full lowercase-hex rendering.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Abbreviated rendering (first 8 hex chars) for logs and displays.
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl core::fmt::Debug for CircuitId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "CircuitId({})", self.to_hex())
    }
}

impl core::fmt::Display for CircuitId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

/// The artifact kinds the wire format distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// An [`OwnershipStatement`].
    Statement,
    /// An [`crate::OwnershipProof`].
    Proof,
    /// A Groth16 [`VerifyingKey`].
    VerifyingKey,
    /// A Groth16 [`ProvingKey`].
    ProvingKey,
    /// A [`crate::SignedClaim`] (statement + proof bundle).
    Claim,
    /// A registry-ledger head (size + accumulator root) — payload codec in
    /// `zkrownn-ledger`.
    LedgerRoot,
    /// A ledger membership proof (audit path) — payload codec in
    /// `zkrownn-ledger`.
    MembershipProof,
    /// A ledger root-transition consistency proof — payload codec in
    /// `zkrownn-ledger`.
    ConsistencyProof,
    /// A segmented on-disk key store (`.zkst`) — container codec in
    /// `zkrownn-store`. Store files reuse the `ZKRW` magic with this kind
    /// tag so a store is recognizably a ZKROWNN artifact, but their body is
    /// a seekable segment table rather than a monolithic payload.
    KeyStore,
}

impl ArtifactKind {
    /// One-byte wire tag.
    pub fn tag(self) -> u8 {
        match self {
            Self::Statement => 1,
            Self::Proof => 2,
            Self::VerifyingKey => 3,
            Self::ProvingKey => 4,
            Self::Claim => 5,
            Self::LedgerRoot => 6,
            Self::MembershipProof => 7,
            Self::ConsistencyProof => 8,
            Self::KeyStore => zkrownn_store::STORE_KIND,
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(Self::Statement),
            2 => Some(Self::Proof),
            3 => Some(Self::VerifyingKey),
            4 => Some(Self::ProvingKey),
            5 => Some(Self::Claim),
            6 => Some(Self::LedgerRoot),
            7 => Some(Self::MembershipProof),
            8 => Some(Self::ConsistencyProof),
            9 => Some(Self::KeyStore),
            _ => None,
        }
    }

    /// Human-readable kind name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Statement => "ownership statement",
            Self::Proof => "ownership proof",
            Self::VerifyingKey => "verifying key",
            Self::ProvingKey => "proving key",
            Self::Claim => "signed claim",
            Self::LedgerRoot => "ledger root",
            Self::MembershipProof => "ledger membership proof",
            Self::ConsistencyProof => "ledger consistency proof",
            Self::KeyStore => "segmented key store",
        }
    }
}

/// Why a byte string failed to decode as an artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Shorter than the structure it claims (or needs) to hold.
    Truncated {
        /// Bytes needed to continue decoding.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The leading magic bytes are not `ZKRW`.
    BadMagic([u8; 4]),
    /// The kind tag is valid but not the kind the caller asked for.
    WrongKind {
        /// Kind the caller tried to decode.
        expected: ArtifactKind,
        /// Kind found on the wire.
        got: ArtifactKind,
    },
    /// The kind tag is not one this build knows.
    UnknownKind(u8),
    /// The format version is not supported by this build.
    UnsupportedVersion {
        /// Version found on the wire.
        got: u16,
        /// Version this build speaks.
        supported: u16,
    },
    /// The buffer length disagrees with the envelope's payload length.
    LengthMismatch {
        /// Length the envelope describes.
        expected: usize,
        /// Length supplied.
        got: usize,
    },
    /// The payload checksum does not match (bit rot or tampering).
    ChecksumMismatch,
    /// A key or proof payload failed point-level validation.
    Key(zkrownn_groth16::DecodeError),
    /// The payload structure is invalid.
    Malformed(&'static str),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated { needed, got } => {
                write!(f, "truncated artifact: need {needed} bytes, have {got}")
            }
            Self::BadMagic(m) => write!(f, "bad magic bytes {m:02x?} (not a ZKROWNN artifact)"),
            Self::WrongKind { expected, got } => {
                write!(f, "expected a {}, found a {}", expected.name(), got.name())
            }
            Self::UnknownKind(t) => write!(f, "unknown artifact kind tag {t}"),
            Self::UnsupportedVersion { got, supported } => {
                write!(
                    f,
                    "unsupported format version {got} (this build speaks {supported})"
                )
            }
            Self::LengthMismatch { expected, got } => {
                write!(f, "artifact is {got} bytes, envelope describes {expected}")
            }
            Self::ChecksumMismatch => write!(f, "artifact checksum mismatch (corrupted payload)"),
            Self::Key(e) => write!(f, "invalid key/proof payload: {e}"),
            Self::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

#[cfg(feature = "std")]
impl std::error::Error for WireError {}

impl From<zkrownn_groth16::DecodeError> for WireError {
    fn from(e: zkrownn_groth16::DecodeError) -> Self {
        Self::Key(e)
    }
}

/// Magic bytes opening every artifact.
pub const MAGIC: [u8; 4] = *b"ZKRW";

/// The wire-format version this build writes and accepts.
pub const WIRE_VERSION: u16 = 1;

const HEADER_LEN: usize = 4 + 1 + 2 + 8; // magic ‖ kind ‖ version ‖ payload len
const CHECKSUM_LEN: usize = 8; // truncated SHA-256 over header ‖ payload

/// Envelope bytes added around every payload (header + checksum).
pub const WIRE_OVERHEAD: usize = HEADER_LEN + CHECKSUM_LEN;

/// A serializable, versioned, self-identifying wire object.
///
/// Implementors provide the payload codec; the trait supplies the envelope:
/// `to_bytes` wraps the payload in magic bytes, the kind tag, the format
/// version, the payload length and a truncated-SHA-256 checksum, and
/// `from_bytes` validates all five before touching the payload.
pub trait Artifact: Sized {
    /// Which artifact this is on the wire.
    const KIND: ArtifactKind;

    /// Format version written and accepted (bump on incompatible change).
    const FORMAT_VERSION: u16 = WIRE_VERSION;

    /// Appends the canonical payload encoding to `out`.
    fn write_payload(&self, out: &mut Vec<u8>);

    /// Decodes the payload (envelope already validated).
    fn read_payload(payload: &[u8]) -> Result<Self, WireError>;

    /// Payload size in bytes (must equal what `write_payload` appends).
    fn payload_size(&self) -> usize;

    /// Total serialized size: envelope overhead + payload.
    fn serialized_size(&self) -> usize {
        WIRE_OVERHEAD + self.payload_size()
    }

    /// Serializes the artifact with its envelope.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_size());
        out.extend_from_slice(&MAGIC);
        out.push(Self::KIND.tag());
        out.extend_from_slice(&Self::FORMAT_VERSION.to_le_bytes());
        let len_pos = out.len();
        out.extend_from_slice(&0u64.to_le_bytes());
        self.write_payload(&mut out);
        let payload_len = (out.len() - HEADER_LEN) as u64;
        out[len_pos..len_pos + 8].copy_from_slice(&payload_len.to_le_bytes());
        let sum = sha256(&out);
        out.extend_from_slice(&sum[..CHECKSUM_LEN]);
        debug_assert_eq!(out.len(), self.serialized_size(), "payload_size is wrong");
        out
    }

    /// Validates the envelope and decodes the artifact.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < WIRE_OVERHEAD {
            return Err(WireError::Truncated {
                needed: WIRE_OVERHEAD,
                got: bytes.len(),
            });
        }
        if bytes[0..4] != MAGIC {
            return Err(WireError::BadMagic(bytes[0..4].try_into().unwrap()));
        }
        let kind = ArtifactKind::from_tag(bytes[4]).ok_or(WireError::UnknownKind(bytes[4]))?;
        if kind != Self::KIND {
            return Err(WireError::WrongKind {
                expected: Self::KIND,
                got: kind,
            });
        }
        let version = u16::from_le_bytes(bytes[5..7].try_into().unwrap());
        if version != Self::FORMAT_VERSION {
            return Err(WireError::UnsupportedVersion {
                got: version,
                supported: Self::FORMAT_VERSION,
            });
        }
        let payload_len = u64::from_le_bytes(bytes[7..15].try_into().unwrap());
        let payload_len =
            usize::try_from(payload_len).map_err(|_| WireError::Malformed("payload length"))?;
        let expected = HEADER_LEN
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(CHECKSUM_LEN))
            .ok_or(WireError::Malformed("payload length"))?;
        if bytes.len() != expected {
            return Err(WireError::LengthMismatch {
                expected,
                got: bytes.len(),
            });
        }
        let body = &bytes[..HEADER_LEN + payload_len];
        if sha256(body)[..CHECKSUM_LEN] != bytes[HEADER_LEN + payload_len..] {
            return Err(WireError::ChecksumMismatch);
        }
        Self::read_payload(&bytes[HEADER_LEN..HEADER_LEN + payload_len])
    }
}

// ---------------------------------------------------------------------------
// Payload reader
// ---------------------------------------------------------------------------

/// Cursor over a payload with typed, bounds-checked reads.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, off: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .off
            .checked_add(n)
            .ok_or(WireError::Malformed("length overflow"))?;
        let slice = self.buf.get(self.off..end).ok_or(WireError::Truncated {
            needed: end,
            got: self.buf.len(),
        })?;
        self.off = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("boolean byte is not 0 or 1")),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn len(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Malformed("length overflow"))
    }

    pub(crate) fn i128(&mut self) -> Result<i128, WireError> {
        Ok(i128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads `n` little-endian `i128`s.
    ///
    /// The declared count is validated against the bytes actually left in
    /// the buffer *before* any allocation, so a hostile length field costs
    /// a bounds check — never an over-sized `Vec` reservation.
    pub(crate) fn i128_vec(&mut self, n: usize) -> Result<Vec<i128>, WireError> {
        let remaining = self.buf.len() - self.off;
        let needed = n
            .checked_mul(16)
            .ok_or(WireError::Malformed("length overflow"))?;
        if needed > remaining {
            return Err(WireError::Truncated {
                needed: self.off + needed,
                got: self.buf.len(),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.i128()?);
        }
        Ok(out)
    }

    pub(crate) fn finish(self) -> Result<(), WireError> {
        if self.off == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::LengthMismatch {
                expected: self.off,
                got: self.buf.len(),
            })
        }
    }
}

fn write_i128s(vals: &[i128], out: &mut Vec<u8>) {
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// OwnershipStatement
// ---------------------------------------------------------------------------

/// The public half of an extraction circuit: everything a verifier needs to
/// check an ownership claim, and nothing the prover must keep secret.
///
/// Carries the quantized suspect model (its parameters are the circuit's
/// public inputs), the BER threshold, the averaging mode, the fixed-point
/// configuration and the watermark *dimensions* (trigger count, signature
/// length) — but never the trigger keys, the projection matrix or the
/// signature bits themselves.
#[derive(Clone, Debug, PartialEq)]
pub struct OwnershipStatement {
    /// The quantized suspect model under dispute (public). Its `cfg` must
    /// equal [`Self::cfg`] — the wire format stores the configuration once
    /// and normalizes `model.cfg` to it on decode, so a hand-built
    /// statement with diverging configurations will not round-trip
    /// identically.
    pub model: QuantizedModel,
    /// Trigger-set size `T` (shape only; the triggers stay private).
    pub num_triggers: usize,
    /// Signature length `N` (shape only; the bits stay private).
    pub signature_bits: usize,
    /// Maximum tolerated bit errors (`θ·N`, baked into the circuit).
    pub max_errors: u64,
    /// Whether the `1/T` average is folded into the projection matrix.
    pub fold_average: bool,
    /// The canonical fixed-point configuration (also applied to
    /// [`Self::model`] when decoding).
    pub cfg: FixedConfig,
}

const LAYER_DENSE: u8 = 0;
const LAYER_RELU: u8 = 1;
const LAYER_IDENTITY: u8 = 2;
const LAYER_MAXPOOL: u8 = 3;
const LAYER_CONV: u8 = 4;

fn write_layer_shape(layer: &QuantLayer, out: &mut Vec<u8>) {
    match layer {
        QuantLayer::Dense {
            in_dim, out_dim, ..
        } => {
            out.push(LAYER_DENSE);
            out.extend_from_slice(&(*in_dim as u64).to_le_bytes());
            out.extend_from_slice(&(*out_dim as u64).to_le_bytes());
        }
        QuantLayer::ReLU => out.push(LAYER_RELU),
        QuantLayer::Identity => out.push(LAYER_IDENTITY),
        QuantLayer::MaxPool {
            channels,
            height,
            width,
            size,
            stride,
        } => {
            out.push(LAYER_MAXPOOL);
            for d in [channels, height, width, size, stride] {
                out.extend_from_slice(&(*d as u64).to_le_bytes());
            }
        }
        QuantLayer::Conv { shape, .. } => {
            out.push(LAYER_CONV);
            for d in [
                shape.in_channels,
                shape.height,
                shape.width,
                shape.out_channels,
                shape.kernel,
                shape.stride,
            ] {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
        }
    }
}

impl OwnershipStatement {
    /// The circuit digest tying this statement to its keys and proofs:
    /// the setup-trace digest of the extraction circuit this statement
    /// describes (public data suffices — no witness is consulted).
    pub fn circuit_id(&self) -> CircuitId {
        CircuitId::of_circuit(&crate::circuit::ExtractionCircuit::from_statement(self))
    }

    /// SHA-256 over the full payload (shape *and* parameter values) — unlike
    /// the [`CircuitId`], this distinguishes two same-shaped models, so it
    /// keys per-statement caches such as prepared public-input vectors.
    pub fn content_digest(&self) -> [u8; 32] {
        let mut payload = Vec::with_capacity(self.payload_size());
        self.write_payload(&mut payload);
        sha256(&payload)
    }

    /// The verifier-side public input vector: model parameters followed by
    /// the expected verdict bit. Excludes the implicit leading constant.
    pub fn public_inputs(&self, expected_verdict: bool) -> Vec<Fr> {
        let mut out = self.model_inputs();
        out.push(Fr::from_i128(i128::from(expected_verdict)));
        out
    }

    /// The model-parameter prefix of the public input vector (everything but
    /// the verdict). Batch verification prepares this once per statement.
    pub fn model_inputs(&self) -> Vec<Fr> {
        self.model
            .params_in_order()
            .iter()
            .map(|&v| Fr::from_i128(v))
            .collect()
    }
}

impl Artifact for OwnershipStatement {
    const KIND: ArtifactKind = ArtifactKind::Statement;

    fn payload_size(&self) -> usize {
        let mut size = 3 * 4 + 1 + 8 + 8 + 8 + 8 + 8; // cfg, fold, θ, T, N, input_len, #layers
        for layer in &self.model.layers {
            size += 1; // tag
            size += match layer {
                QuantLayer::Dense { w, b, .. } => 2 * 8 + 16 * (w.len() + b.len()),
                QuantLayer::ReLU | QuantLayer::Identity => 0,
                QuantLayer::MaxPool { .. } => 5 * 8,
                QuantLayer::Conv { w, b, .. } => 6 * 8 + 16 * (w.len() + b.len()),
            };
        }
        size
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.cfg.frac_bits.to_le_bytes());
        out.extend_from_slice(&self.cfg.sigmoid_frac_bits.to_le_bytes());
        out.extend_from_slice(&self.cfg.int_bits.to_le_bytes());
        out.push(u8::from(self.fold_average));
        out.extend_from_slice(&self.max_errors.to_le_bytes());
        out.extend_from_slice(&(self.num_triggers as u64).to_le_bytes());
        out.extend_from_slice(&(self.signature_bits as u64).to_le_bytes());
        out.extend_from_slice(&(self.model.input_len as u64).to_le_bytes());
        out.extend_from_slice(&(self.model.layers.len() as u64).to_le_bytes());
        for layer in &self.model.layers {
            write_layer_shape(layer, out);
            match layer {
                QuantLayer::Dense { w, b, .. } | QuantLayer::Conv { w, b, .. } => {
                    write_i128s(w, out);
                    write_i128s(b, out);
                }
                QuantLayer::ReLU | QuantLayer::Identity | QuantLayer::MaxPool { .. } => {}
            }
        }
    }

    fn read_payload(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let cfg = FixedConfig {
            frac_bits: r.u32()?,
            sigmoid_frac_bits: r.u32()?,
            int_bits: r.u32()?,
        };
        let fold_average = r.bool()?;
        let max_errors = r.u64()?;
        let num_triggers = r.len()?;
        let signature_bits = r.len()?;
        let input_len = r.len()?;
        let num_layers = r.len()?;
        let mut layers = Vec::with_capacity(num_layers.min(payload.len() + 1));
        for _ in 0..num_layers {
            let layer = match r.u8()? {
                LAYER_DENSE => {
                    let in_dim = r.len()?;
                    let out_dim = r.len()?;
                    let n_w = in_dim
                        .checked_mul(out_dim)
                        .ok_or(WireError::Malformed("dense parameter count overflow"))?;
                    QuantLayer::Dense {
                        in_dim,
                        out_dim,
                        w: r.i128_vec(n_w)?,
                        b: r.i128_vec(out_dim)?,
                    }
                }
                LAYER_RELU => QuantLayer::ReLU,
                LAYER_IDENTITY => QuantLayer::Identity,
                LAYER_MAXPOOL => QuantLayer::MaxPool {
                    channels: r.len()?,
                    height: r.len()?,
                    width: r.len()?,
                    size: r.len()?,
                    stride: r.len()?,
                },
                LAYER_CONV => {
                    let shape = ConvShape {
                        in_channels: r.len()?,
                        height: r.len()?,
                        width: r.len()?,
                        out_channels: r.len()?,
                        kernel: r.len()?,
                        stride: r.len()?,
                    };
                    let n_w = shape
                        .in_channels
                        .checked_mul(shape.kernel)
                        .and_then(|n| n.checked_mul(shape.kernel))
                        .and_then(|n| n.checked_mul(shape.out_channels))
                        .ok_or(WireError::Malformed("conv parameter count overflow"))?;
                    QuantLayer::Conv {
                        shape,
                        w: r.i128_vec(n_w)?,
                        b: r.i128_vec(shape.out_channels)?,
                    }
                }
                _ => return Err(WireError::Malformed("unknown layer tag")),
            };
            layers.push(layer);
        }
        r.finish()?;
        Ok(Self {
            model: QuantizedModel {
                layers,
                input_len,
                cfg,
            },
            num_triggers,
            signature_bits,
            max_errors,
            fold_average,
            cfg,
        })
    }
}

// ---------------------------------------------------------------------------
// Artifact impls for the Groth16 key material
// ---------------------------------------------------------------------------

impl Artifact for VerifyingKey {
    const KIND: ArtifactKind = ArtifactKind::VerifyingKey;

    fn payload_size(&self) -> usize {
        self.serialized_size()
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        self.write_bytes(out);
    }

    fn read_payload(payload: &[u8]) -> Result<Self, WireError> {
        VerifyingKey::from_bytes(payload).map_err(WireError::Key)
    }
}

impl Artifact for ProvingKey {
    const KIND: ArtifactKind = ArtifactKind::ProvingKey;

    fn payload_size(&self) -> usize {
        self.serialized_size()
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        self.write_bytes(out);
    }

    fn read_payload(payload: &[u8]) -> Result<Self, WireError> {
        ProvingKey::from_bytes(payload).map_err(WireError::Key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_sha256_matches_one_shot_for_any_chunking() {
        // regression: a partially-filled buffer must survive an update that
        // doesn't complete its block
        let data: Vec<u8> = (0..100_003u32).map(|i| (i * 31 % 251) as u8).collect();
        for sizes in [vec![1usize], vec![9, 64, 33, 1, 128, 5], vec![63, 63, 2]] {
            let mut st = Sha256::new();
            let mut off = 0;
            let mut k = 0;
            while off < data.len() {
                let n = sizes[k % sizes.len()].min(data.len() - off);
                st.update(&data[off..off + n]);
                off += n;
                k += 1;
            }
            assert_eq!(st.finalize(), sha256(&data), "chunking {sizes:?}");
        }
    }

    #[test]
    fn trace_hasher_is_domain_separated_and_deterministic() {
        let digest = |chunks: &[&[u8]]| {
            let mut h = TraceHasher::new();
            for c in chunks {
                h.absorb(c);
            }
            h.finalize()
        };
        assert_eq!(digest(&[b"ab", b"c"]), digest(&[b"a", b"bc"]));
        // the domain tag separates the trace digest from a plain hash
        let mut tagged = Vec::from(TRACE_DOMAIN_TAG);
        tagged.extend_from_slice(b"abc");
        assert_eq!(digest(&[b"abc"]), sha256(&tagged));
        assert_ne!(digest(&[b"abc"]), sha256(b"abc"));
    }

    fn tiny_statement() -> OwnershipStatement {
        let cfg = FixedConfig::default();
        OwnershipStatement {
            model: QuantizedModel {
                layers: vec![QuantLayer::Dense {
                    in_dim: 2,
                    out_dim: 2,
                    w: vec![1, 2, 3, 4],
                    b: vec![0, 0],
                }],
                input_len: 2,
                cfg,
            },
            num_triggers: 1,
            signature_bits: 4,
            max_errors: 1,
            fold_average: false,
            cfg,
        }
    }

    #[test]
    fn hostile_vector_lengths_fail_before_allocating() {
        // A statement whose in-payload length fields are inflated far past
        // the actual buffer must be rejected by a bounds check, not by an
        // attempted multi-GB allocation. The envelope checksum would catch
        // the edit too, so splice the length *and* recompute the checksum —
        // the decoder then has nothing but its own validation between a
        // hostile count and `Vec::with_capacity`.
        let bytes = Artifact::to_bytes(&tiny_statement());
        let good: OwnershipStatement = Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(good, tiny_statement());
        let n = bytes.len();
        for off in HEADER_LEN..n - CHECKSUM_LEN - 8 {
            // stamp a huge u64 at every payload offset; whichever ones land
            // on length fields now declare ~2^62 elements. A decoder that
            // sizes a Vec from the declared count would ask the allocator
            // for exabytes and abort the process — completing (with either
            // verdict) is the pass condition. Offsets landing on value
            // fields (weights, max_errors) may legally decode.
            let mut evil = bytes.clone();
            evil[off..off + 8].copy_from_slice(&(u64::MAX / 4).to_le_bytes());
            let body_len = n - CHECKSUM_LEN;
            let sum = sha256(&evil[..body_len]);
            evil[body_len..].copy_from_slice(&sum[..CHECKSUM_LEN]);
            let _ = <OwnershipStatement as Artifact>::from_bytes(&evil);
        }
        // and the layer-count field specifically (fixed payload offset:
        // cfg 12 ‖ fold 1 ‖ θ 8 ‖ T 8 ‖ N 8 ‖ input_len 8) must be
        // rejected outright
        let mut evil = bytes.clone();
        let layer_count_off = HEADER_LEN + 12 + 1 + 8 + 8 + 8 + 8;
        assert_eq!(
            evil[layer_count_off..layer_count_off + 8],
            1u64.to_le_bytes(),
            "single-layer statement encodes a layer count of 1"
        );
        evil[layer_count_off..layer_count_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_len = n - CHECKSUM_LEN;
        let sum = sha256(&evil[..body_len]);
        evil[body_len..].copy_from_slice(&sum[..CHECKSUM_LEN]);
        assert!(<OwnershipStatement as Artifact>::from_bytes(&evil).is_err());
    }

    #[test]
    fn declared_payload_length_is_validated_against_the_buffer() {
        let bytes = Artifact::to_bytes(&tiny_statement());
        // inflate the envelope's own payload-length field without supplying
        // the bytes: must be a LengthMismatch, never an allocation
        let mut evil = bytes.clone();
        evil[7..15].copy_from_slice(&(u64::MAX - 16).to_le_bytes());
        assert!(matches!(
            <OwnershipStatement as Artifact>::from_bytes(&evil),
            Err(WireError::Malformed(_)) | Err(WireError::LengthMismatch { .. })
        ));
        // truncating the buffer mid-payload must also be caught up front
        for keep in [0, 4, HEADER_LEN, bytes.len() - 1] {
            assert!(<OwnershipStatement as Artifact>::from_bytes(&bytes[..keep]).is_err());
        }
    }
}
