//! # zkrownn — zero-knowledge right of ownership for neural networks
//!
//! End-to-end reproduction of the paper's contribution: a model owner with
//! a DeepSigns-watermarked network proves — in zero knowledge — that a
//! suspect model still carries their watermark, without revealing the
//! trigger keys, the projection matrix or the signature. Any third party
//! verifies the 128-byte proof in milliseconds with only the verifying key.
//!
//! ## The artifact-centric workflow
//!
//! Setup, proving and verification are performed by *different parties*
//! exchanging compact artifacts, so the API is organized around three
//! role types and a wire format:
//!
//! 1. [`Authority::setup`] — a trusted party runs the one-time,
//!    circuit-specific setup (it sees only the public circuit shape) and
//!    hands out a [`ProverKit`] and a [`VerifierKit`];
//! 2. [`ProverKit::prove`] — the owner, who alone holds the private
//!    watermark witness, produces a [`SignedClaim`]: the public
//!    [`OwnershipStatement`] plus an [`OwnershipProof`];
//! 3. [`VerifierKit::verify`] / [`KeyRegistry::verify_batch`] — anyone
//!    checks claims with public data only; kits issued by the authority
//!    are pinned to the disputed model's statement (a sound claim about a
//!    *different* model fails with [`ZkrownnError::StatementMismatch`]),
//!    and a registry caches pairing precomputation per [`CircuitId`] and
//!    amortizes whole batches.
//!
//! Every exchanged object implements [`Artifact`] — a versioned,
//! checksummed, self-identifying byte encoding — so kits and claims can be
//! reconstructed in another process with nothing but `from_bytes`. All
//! failures surface as one [`ZkrownnError`], which in particular separates
//! a *forged* proof ([`ZkrownnError::InvalidProof`]) from a *valid proof
//! that the watermark is absent* ([`ZkrownnError::NegativeVerdict`]).
//!
//! ```
//! use rand::SeedableRng;
//! use zkrownn::{Artifact, Authority, ExtractionSpec, KeyRegistry, SignedClaim};
//! use zkrownn::{QuantLayer, QuantizedModel};
//! use zkrownn_gadgets::FixedConfig;
//!
//! # fn main() -> Result<(), zkrownn::ZkrownnError> {
//! // a (tiny) public suspect model and the owner's private witness
//! let cfg = FixedConfig::default();
//! let model = QuantizedModel {
//!     layers: vec![
//!         QuantLayer::Dense {
//!             in_dim: 2,
//!             out_dim: 2,
//!             w: vec![cfg.encode(0.5); 4],
//!             b: vec![0; 2],
//!         },
//!         QuantLayer::ReLU,
//!     ],
//!     input_len: 2,
//!     cfg,
//! };
//! let spec = ExtractionSpec {
//!     model,
//!     triggers: vec![vec![cfg.encode(1.0); 2]],     // private
//!     projection: vec![cfg.encode(0.25); 4],        // private
//!     signature: vec![true, false],                 // private
//!     max_errors: 2,
//!     fold_average: false,
//!     cfg,
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!
//! // 1. the authority hands each party its kit
//! let (prover, verifier) = Authority::setup(&spec, &mut rng);
//!
//! // 2. the owner generates a claim and ships it as bytes
//! let claim = prover.prove(&mut rng)?;
//! let wire: Vec<u8> = claim.to_bytes();
//!
//! // 3. any third party reconstructs and verifies — public data only
//! let received = SignedClaim::from_bytes(&wire)?;
//! verifier.verify(&received)?;
//!
//! // services register the key once and verify claims in bulk
//! let mut registry = KeyRegistry::new();
//! registry.register_kit(&verifier);
//! for result in registry.verify_batch(&[received], &mut rng) {
//!     result?;
//! }
//! # Ok(())
//! # }
//! ```
//!
//! ## Mode-aware synthesis
//!
//! The extraction circuit is *one* description — [`ExtractionCircuit`],
//! an implementation of the `Circuit` trait from `zkrownn-r1cs` — driven
//! by three synthesizers: witness-free setup (what [`Authority::setup`]
//! and [`CircuitId`] derivation run; no witness closure is ever
//! evaluated), proving (dense assignment, [`ProverKit::prove`]), and
//! constraint counting/diagnostics. The [`CircuitId`] is the SHA-256 of
//! the setup-mode synthesis trace, so "same shape ⇒ same keys" is a
//! property of the synthesized constraints themselves, not of a
//! side-channel shape description.
//!
//! ## Module map
//!
//! * [`model`] / [`circuit`] — quantize the suspect model and assemble the
//!   watermark-extraction circuit (feed-forward → average → project →
//!   sigmoid → threshold → BER, Algorithm 1 of the paper);
//! * [`artifact`] — the wire format: [`Artifact`] envelopes, [`CircuitId`]
//!   synthesis-trace digests, the [`OwnershipStatement`];
//! * [`session`] — the role types ([`Authority`], [`ProverKit`],
//!   [`VerifierKit`], [`SignedClaim`]);
//! * [`registry`] — [`KeyRegistry`]: cached key preparation + batch
//!   verification;
//! * [`prove`] — the [`OwnershipProof`] wire object;
//! * [`mod@reference`] — bit-identical fixed-point extraction outside the
//!   circuit; [`benchmarks`] — the Table II model zoo; [`inference`] —
//!   verifiable ML inference (the paper's conclusion extension).

#![deny(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

extern crate alloc;

pub mod artifact;
#[cfg(feature = "std")]
pub mod benchmarks;
pub mod circuit;
pub mod error;
pub mod inference;
pub mod model;
pub mod prove;
pub mod reference;
#[cfg(feature = "std")]
pub mod registry;
#[cfg(feature = "std")]
pub mod session;
pub mod verify;

pub use artifact::{Artifact, ArtifactKind, CircuitId, OwnershipStatement, WireError};
pub use circuit::{BuiltCircuit, ExtractionCircuit, ExtractionSpec, ExtractionWitness};
pub use error::ZkrownnError;
pub use model::{QuantLayer, QuantizedModel};
pub use prove::OwnershipProof;
#[cfg(feature = "std")]
pub use registry::{KeyRegistry, ShardedKeyRegistry, REGISTRY_SHARDS};
#[cfg(feature = "std")]
pub use session::{Authority, ProverKit, StoredProverKit};
pub use verify::{SignedClaim, VerifierKit};
// the store-backed setup/proving knobs, so `zkrownn` alone is enough to
// drive the streaming workflow end to end
pub use zkrownn_curves::MemoryBudget;
#[cfg(feature = "std")]
pub use zkrownn_store::{KeyStore, StoreBackend};
