//! # zkrownn — zero-knowledge right of ownership for neural networks
//!
//! End-to-end reproduction of the paper's contribution: a model owner with
//! a DeepSigns-watermarked network proves — in zero knowledge — that a
//! suspect model still carries their watermark, without revealing the
//! trigger keys, the projection matrix or the signature. Any third party
//! verifies the 128-byte proof in milliseconds with only the verifying key.
//!
//! Pipeline (Figure 1 / Algorithm 1 of the paper):
//!
//! 1. [`model::QuantizedModel`] — quantize the public suspect model;
//! 2. [`circuit::ExtractionSpec`] — assemble the watermark-extraction
//!    circuit (feed-forward → average → project → sigmoid → threshold →
//!    BER);
//! 3. [`prove::setup`] — one-time circuit-specific trusted setup;
//! 4. [`prove::prove`] — generate the ownership proof (once);
//! 5. [`prove::verify`] — public verification by anyone.
//!
//! The [`mod@reference`] module re-implements the extraction with bit-identical
//! fixed-point semantics outside the circuit, [`benchmarks`] hosts the
//! Table II model zoo (MNIST-MLP / CIFAR10-CNN) with watermark embedding,
//! and [`inference`] extends the gadget stack to verifiable ML inference
//! (the extension highlighted in the paper's conclusion).

#![warn(missing_docs)]

pub mod benchmarks;
pub mod circuit;
pub mod inference;
pub mod model;
pub mod prove;
pub mod reference;

pub use circuit::{BuiltCircuit, ExtractionSpec};
pub use model::{QuantLayer, QuantizedModel};
pub use prove::{prove, setup, verify, verify_prepared, OwnershipError, OwnershipProof};
