//! The ownership proof object.
//!
//! Proving goes through the role-typed workflow: an authority calls
//! [`Authority::setup`](crate::Authority::setup) (or the strictly
//! witness-free [`Authority::setup_statement`](crate::Authority::setup_statement)),
//! the owner calls [`ProverKit::prove`](crate::ProverKit::prove), verifiers
//! call [`VerifierKit::verify`](crate::VerifierKit::verify) or go through a
//! [`KeyRegistry`](crate::KeyRegistry) for amortized batches. (The PR-2
//! free-function shims are gone; their role-typed replacements above are
//! the only path.)

use crate::artifact::{Artifact, ArtifactKind, CircuitId, Reader, WireError};
use alloc::vec::Vec;
use zkrownn_groth16::Proof;

/// An ownership proof: the 128-byte Groth16 proof, the public verdict it
/// attests, and the id of the circuit it belongs to.
#[derive(Clone, Debug, PartialEq)]
pub struct OwnershipProof {
    /// The 128-byte Groth16 proof.
    pub proof: Proof,
    /// The public verdict (`true` — the watermark was recovered within the
    /// BER threshold).
    pub verdict: bool,
    /// Synthesis-trace digest of the circuit this proof was generated for.
    pub circuit_id: CircuitId,
}

impl Artifact for OwnershipProof {
    const KIND: ArtifactKind = ArtifactKind::Proof;

    fn payload_size(&self) -> usize {
        32 + 1 + Proof::SIZE
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.circuit_id.as_bytes());
        out.push(u8::from(self.verdict));
        out.extend_from_slice(&self.proof.to_bytes());
    }

    fn read_payload(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let circuit_id = CircuitId::from_bytes(r.take(32)?.try_into().unwrap());
        let verdict = r.bool()?;
        let proof = Proof::from_bytes(r.take(Proof::SIZE)?).map_err(WireError::Key)?;
        r.finish()?;
        Ok(Self {
            proof,
            verdict,
            circuit_id,
        })
    }
}
