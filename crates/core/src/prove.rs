//! The ownership proof object, plus the original free-function API kept as
//! thin deprecated shims for one release.
//!
//! New code should use the role-typed workflow instead: an authority calls
//! [`Authority::setup`](crate::Authority::setup), the owner calls
//! [`ProverKit::prove`](crate::ProverKit::prove), verifiers call
//! [`VerifierKit::verify`](crate::VerifierKit::verify) or go through a
//! [`KeyRegistry`](crate::KeyRegistry) for amortized batches. The shims
//! keep their original standalone bodies (delegating would force a
//! proving-key/spec clone per call) but behave identically to the kit path
//! — including the [`ZkrownnError::NegativeVerdict`] distinction — and are
//! pinned to it by `deprecated_free_function_shims_still_work` in the
//! end-to-end suite.

use crate::artifact::{Artifact, ArtifactKind, CircuitId, Reader, WireError};
use crate::circuit::ExtractionSpec;
use crate::error::ZkrownnError;
use zkrownn_groth16::{
    create_proof, generate_parameters, verify_proof_prepared, PreparedVerifyingKey, Proof,
    ProvingKey, VerifyingKey,
};

/// The old two-variant error type, now an alias of the unified hierarchy.
#[deprecated(note = "use ZkrownnError, which this now aliases")]
pub type OwnershipError = ZkrownnError;

/// An ownership proof: the 128-byte Groth16 proof, the public verdict it
/// attests, and the id of the circuit it belongs to.
#[derive(Clone, Debug, PartialEq)]
pub struct OwnershipProof {
    /// The 128-byte Groth16 proof.
    pub proof: Proof,
    /// The public verdict (`true` — the watermark was recovered within the
    /// BER threshold).
    pub verdict: bool,
    /// Shape digest of the circuit this proof was generated for.
    pub circuit_id: CircuitId,
}

impl Artifact for OwnershipProof {
    const KIND: ArtifactKind = ArtifactKind::Proof;

    fn payload_size(&self) -> usize {
        32 + 1 + Proof::SIZE
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.circuit_id.as_bytes());
        out.push(u8::from(self.verdict));
        out.extend_from_slice(&self.proof.to_bytes());
    }

    fn read_payload(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let circuit_id = CircuitId::from_bytes(r.take(32)?.try_into().unwrap());
        let verdict = r.bool()?;
        let proof = Proof::from_bytes(r.take(Proof::SIZE)?).map_err(WireError::Key)?;
        r.finish()?;
        Ok(Self {
            proof,
            verdict,
            circuit_id,
        })
    }
}

/// Runs the one-time trusted setup for an extraction circuit.
///
/// Only the *shape* of the spec matters (a placeholder witness is used), so
/// a trusted third party can run this knowing just the public model and the
/// watermark dimensions.
#[deprecated(note = "use Authority::setup, which returns role-typed kits")]
pub fn setup<R: rand::Rng + ?Sized>(spec: &ExtractionSpec, rng: &mut R) -> ProvingKey {
    let built = spec.placeholder_witness().build();
    generate_parameters(&built.cs.to_matrices(), rng)
}

/// Generates the ownership proof (the prover `P` of the paper).
#[deprecated(note = "use ProverKit::prove, which returns a portable SignedClaim")]
pub fn prove<R: rand::Rng + ?Sized>(
    pk: &ProvingKey,
    spec: &ExtractionSpec,
    rng: &mut R,
) -> Result<OwnershipProof, ZkrownnError> {
    let built = spec.build();
    built
        .cs
        .is_satisfied()
        .map_err(ZkrownnError::UnsatisfiedCircuit)?;
    let proof = create_proof(pk, &built.cs, rng);
    Ok(OwnershipProof {
        proof,
        verdict: built.verdict,
        circuit_id: spec.circuit_id(),
    })
}

/// Verifies an ownership proof against the public model (the third-party
/// verifier `V`; needs only the verifying key).
#[deprecated(note = "use VerifierKit::verify or KeyRegistry::verify_batch")]
pub fn verify(
    vk: &VerifyingKey,
    spec_public: &ExtractionSpec,
    proof: &OwnershipProof,
) -> Result<(), ZkrownnError> {
    #[allow(deprecated)]
    verify_prepared(&vk.prepare(), spec_public, proof)
}

/// Verification against a prepared key (amortizes pairing precomputation
/// across many verifications).
#[deprecated(note = "use VerifierKit::verify or KeyRegistry::verify_batch")]
pub fn verify_prepared(
    pvk: &PreparedVerifyingKey,
    spec_public: &ExtractionSpec,
    proof: &OwnershipProof,
) -> Result<(), ZkrownnError> {
    let inputs = spec_public.public_inputs(proof.verdict);
    verify_proof_prepared(pvk, &proof.proof, &inputs).map_err(ZkrownnError::InvalidProof)?;
    if !proof.verdict {
        // a *valid* proof of a negative verdict is not an ownership claim,
        // but it is not a forgery either — report it as what it is
        return Err(ZkrownnError::NegativeVerdict);
    }
    Ok(())
}
