//! The ZKROWNN ownership-proof API: one-time setup, one-time proof
//! generation, and millisecond public verification (Figure 1 of the paper).

use crate::circuit::ExtractionSpec;
use zkrownn_ff::Fr;
use zkrownn_groth16::{
    create_proof, generate_parameters, verify_proof_prepared, PreparedVerifyingKey, Proof,
    ProvingKey, VerifyingKey,
};

/// Errors from the ownership-proof workflow.
#[derive(Debug)]
pub enum OwnershipError {
    /// The witness does not satisfy the extraction circuit (internal bug —
    /// an honest spec always satisfies it; the *verdict* may still be 0).
    UnsatisfiedCircuit(usize),
    /// Verification failed: the proof does not establish ownership of the
    /// stated model.
    InvalidProof(zkrownn_groth16::VerificationError),
}

impl core::fmt::Display for OwnershipError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnsatisfiedCircuit(i) => write!(f, "extraction circuit violated at row {i}"),
            Self::InvalidProof(e) => write!(f, "ownership proof rejected: {e}"),
        }
    }
}

impl std::error::Error for OwnershipError {}

/// An ownership proof together with the verdict it attests to.
#[derive(Clone, Debug)]
pub struct OwnershipProof {
    /// The 128-byte Groth16 proof.
    pub proof: Proof,
    /// The public verdict (`true` — the watermark was recovered within the
    /// BER threshold).
    pub verdict: bool,
}

/// Runs the one-time trusted setup for an extraction circuit.
///
/// Only the *shape* of the spec matters (a placeholder witness is used), so
/// a trusted third party can run this knowing just the public model and the
/// watermark dimensions.
pub fn setup<R: rand::Rng + ?Sized>(spec: &ExtractionSpec, rng: &mut R) -> ProvingKey {
    let built = spec.placeholder_witness().build();
    generate_parameters(&built.cs.to_matrices(), rng)
}

/// Generates the ownership proof (the prover `P` of the paper).
pub fn prove<R: rand::Rng + ?Sized>(
    pk: &ProvingKey,
    spec: &ExtractionSpec,
    rng: &mut R,
) -> Result<OwnershipProof, OwnershipError> {
    let built = spec.build();
    built
        .cs
        .is_satisfied()
        .map_err(OwnershipError::UnsatisfiedCircuit)?;
    let proof = create_proof(pk, &built.cs, rng);
    Ok(OwnershipProof {
        proof,
        verdict: built.verdict,
    })
}

/// Verifies an ownership proof against the public model (the third-party
/// verifier `V`; needs only the verifying key).
pub fn verify(
    vk: &VerifyingKey,
    spec_public: &ExtractionSpec,
    proof: &OwnershipProof,
) -> Result<(), OwnershipError> {
    verify_prepared(&vk.prepare(), spec_public, proof)
}

/// Verification against a prepared key (amortizes pairing precomputation
/// across many verifications).
pub fn verify_prepared(
    pvk: &PreparedVerifyingKey,
    spec_public: &ExtractionSpec,
    proof: &OwnershipProof,
) -> Result<(), OwnershipError> {
    let inputs: Vec<Fr> = spec_public.public_inputs(proof.verdict);
    verify_proof_prepared(pvk, &proof.proof, &inputs).map_err(OwnershipError::InvalidProof)?;
    if !proof.verdict {
        // a valid proof of a *negative* verdict is not an ownership claim
        return Err(OwnershipError::InvalidProof(
            zkrownn_groth16::VerificationError::InvalidProof,
        ));
    }
    Ok(())
}
