//! The verifier's side of the protocol: claims and the kit that checks
//! them. Everything here is public-data-only and `no_std`-portable — it is
//! the exact surface re-exported by the thin `zkrownn-verifier` crate for
//! wasm and embedded verifiers.
//!
//! The proving half (authorities, prover kits, key stores) lives in
//! [`crate::session`] and needs `std`.

use crate::artifact::{Artifact, ArtifactKind, CircuitId, OwnershipStatement, Reader, WireError};
use crate::error::ZkrownnError;
use crate::prove::OwnershipProof;
use alloc::vec::Vec;
use zkrownn_groth16::{verify_proof_prepared, PreparedVerifyingKey, VerifyingKey};

/// The third-party verifier's side: public data only.
///
/// Holds the verifying key (with pairing precomputation applied once) and
/// the circuit id it vouches for. For many-claim workloads, register the
/// key in a `KeyRegistry` instead and use its `verify_batch` (both
/// `std`-only).
pub struct VerifierKit {
    vk: VerifyingKey,
    pvk: PreparedVerifyingKey,
    circuit_id: CircuitId,
    /// Content digest of the one statement this kit accepts claims about
    /// (the model under dispute). `None` = any same-circuit statement.
    expected_statement: Option<[u8; 32]>,
}

impl VerifierKit {
    /// Builds a kit from a verifying key and the circuit id it belongs to —
    /// e.g. after receiving both from an authority in another process.
    ///
    /// The kit starts *unbound*: it accepts a claim about any model of this
    /// circuit shape, and `Ok(())` then only means "the watermark is in the
    /// model the claimant described". When the dispute is about one
    /// specific model, pin it with [`Self::bind_statement`] (kits issued by
    /// `Authority::setup` come pre-bound to the setup's statement).
    pub fn from_parts(vk: VerifyingKey, circuit_id: CircuitId) -> Self {
        let pvk = vk.prepare();
        Self {
            vk,
            pvk,
            circuit_id,
            expected_statement: None,
        }
    }

    /// Pins this kit to one specific public statement (by its
    /// [`OwnershipStatement::content_digest`]): claims about any other
    /// model — even a same-shaped one — fail with
    /// [`ZkrownnError::StatementMismatch`].
    pub fn bind_statement(mut self, digest: [u8; 32]) -> Self {
        self.expected_statement = Some(digest);
        self
    }

    /// The statement digest this kit is bound to, if any.
    pub fn expected_statement(&self) -> Option<[u8; 32]> {
        self.expected_statement
    }

    /// The circuit this kit verifies.
    pub fn circuit_id(&self) -> CircuitId {
        self.circuit_id
    }

    /// The raw verifying key (for shipping to further verifiers).
    pub fn verifying_key(&self) -> &VerifyingKey {
        &self.vk
    }

    /// Verifies an ownership claim.
    ///
    /// Checks, in order: the claim is about the bound statement (when this
    /// kit is bound — see [`Self::bind_statement`]), the claim belongs to
    /// this kit's circuit, the statement's shape matches the proof's
    /// circuit id, the Groth16 pairing equation holds for the statement's
    /// public inputs, and the attested verdict is positive. A valid proof
    /// of verdict 0 fails with [`ZkrownnError::NegativeVerdict`] —
    /// cryptographically sound, but not an ownership claim.
    pub fn verify(&self, claim: &SignedClaim) -> Result<(), ZkrownnError> {
        if let Some(expected) = self.expected_statement {
            if claim.statement.content_digest() != expected {
                return Err(ZkrownnError::StatementMismatch);
            }
            // The statement is byte-identical to the one this kit was bound
            // to at setup, whose synthesis trace produced `self.circuit_id`
            // — no need to re-synthesize it per claim. (Soundness never
            // rested on that check anyway: the pairing equation binds the
            // proof to this kit's circuit-specific key.)
            check_proof_circuit(self.circuit_id, claim)?;
            return verify_claim_crypto(&self.pvk, claim);
        }
        verify_claim_prepared(&self.pvk, self.circuit_id, claim)
    }
}

/// Full claim validation against a prepared key: circuit-identity checks
/// (including one setup-mode synthesis of the claim's statement), the
/// pairing equation, then the verdict gate.
pub(crate) fn verify_claim_prepared(
    pvk: &PreparedVerifyingKey,
    expected: CircuitId,
    claim: &SignedClaim,
) -> Result<(), ZkrownnError> {
    check_proof_circuit(expected, claim)?;
    check_statement_circuit(expected, claim.statement.circuit_id())?;
    verify_claim_crypto(pvk, claim)
}

/// The cryptographic tail of claim validation: the pairing equation over
/// the statement's public inputs, then the verdict gate.
pub(crate) fn verify_claim_crypto(
    pvk: &PreparedVerifyingKey,
    claim: &SignedClaim,
) -> Result<(), ZkrownnError> {
    let inputs = claim.statement.public_inputs(claim.proof.verdict);
    verify_proof_prepared(pvk, &claim.proof.proof, &inputs).map_err(ZkrownnError::InvalidProof)?;
    if !claim.proof.verdict {
        return Err(ZkrownnError::NegativeVerdict);
    }
    Ok(())
}

/// The cheap half of the identity check: the proof must name the expected
/// circuit.
pub(crate) fn check_proof_circuit(
    expected: CircuitId,
    claim: &SignedClaim,
) -> Result<(), ZkrownnError> {
    if claim.proof.circuit_id != expected {
        return Err(ZkrownnError::CircuitMismatch {
            expected,
            got: claim.proof.circuit_id,
        });
    }
    Ok(())
}

/// The expensive half: the statement's actual shape must hash to the same
/// id the verifier expects. Callers that check many claims against the
/// same statement compute `statement_id` once (the `std`-only
/// `KeyRegistry::verify_batch` caches it per distinct statement).
pub(crate) fn check_statement_circuit(
    expected: CircuitId,
    statement_id: CircuitId,
) -> Result<(), ZkrownnError> {
    if statement_id != expected {
        return Err(ZkrownnError::CircuitMismatch {
            expected,
            got: statement_id,
        });
    }
    Ok(())
}

/// A complete, portable ownership claim: the public statement plus the
/// zero-knowledge proof over it.
///
/// This is the artifact a claimant ships to a verification service —
/// everything needed to check the claim against a registered verifying key,
/// nothing more.
#[derive(Clone, Debug, PartialEq)]
pub struct SignedClaim {
    /// The public circuit description the proof is bound to.
    pub statement: OwnershipStatement,
    /// The proof and its attested verdict.
    pub proof: OwnershipProof,
}

impl SignedClaim {
    /// The circuit this claim targets (as named by its proof).
    pub fn circuit_id(&self) -> CircuitId {
        self.proof.circuit_id
    }

    /// The attested verdict (`true` = watermark recovered within θ).
    pub fn verdict(&self) -> bool {
        self.proof.verdict
    }
}

impl Artifact for SignedClaim {
    const KIND: ArtifactKind = ArtifactKind::Claim;

    fn payload_size(&self) -> usize {
        8 + Artifact::serialized_size(&self.statement) + Artifact::serialized_size(&self.proof)
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        let statement = Artifact::to_bytes(&self.statement);
        out.extend_from_slice(&(statement.len() as u64).to_le_bytes());
        out.extend_from_slice(&statement);
        out.extend_from_slice(&Artifact::to_bytes(&self.proof));
    }

    fn read_payload(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let statement_len = r.len()?;
        let statement = OwnershipStatement::from_bytes(r.take(statement_len)?)?;
        let proof_len = payload.len() - (8 + statement_len);
        let proof = OwnershipProof::from_bytes(r.take(proof_len)?)?;
        r.finish()?;
        Ok(Self { statement, proof })
    }
}
