//! Watermark embedding: fine-tunes the model so the mean activation of the
//! trigger set, projected through the secret matrix and squashed by a
//! sigmoid, reproduces the owner's signature bits.
//!
//! Loss: `L = CE(task) + λ·Σⱼ BCE(σ((µ·A)ⱼ), wmⱼ)` where `µ` is the mean
//! activation of the trigger inputs at the watermarked layer. The embedding
//! gradient is injected at that layer through
//! [`zkrownn_nn::Network::backward`]'s injection hook, exactly mirroring
//! DeepSigns' "additional loss term … while fine-tuning".

use crate::extract::{extract, mean_activation};
use crate::keys::WatermarkKeys;
use zkrownn_nn::{sigmoid, softmax_cross_entropy, Network, Tensor};

/// Embedding hyper-parameters.
#[derive(Clone, Debug)]
pub struct EmbedConfig {
    /// Weight of the watermark loss relative to the task loss.
    pub lambda: f32,
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        Self {
            lambda: 2.0,
            epochs: 15,
            lr: 0.01,
        }
    }
}

/// Outcome of an embedding run.
#[derive(Clone, Debug)]
pub struct EmbedReport {
    /// Bit error rate after embedding (0.0 = perfect).
    pub ber: f64,
    /// Final watermark loss.
    pub wm_loss: f32,
}

/// Gradient of the watermark loss with respect to the mean activation `µ`:
/// `∂/∂µ Σⱼ BCE(σ((µ·A)ⱼ), wmⱼ) = A · (σ(µ·A) − wm)`.
fn wm_grad_wrt_mu(keys: &WatermarkKeys, mu: &[f32]) -> (Vec<f32>, f32) {
    let n = keys.signature.len();
    let proj = keys.project(mu);
    let mut loss = 0.0f32;
    let mut delta = vec![0.0f32; n];
    for j in 0..n {
        let p = sigmoid(proj[j]);
        let t = if keys.signature[j] { 1.0 } else { 0.0 };
        loss -= t * p.max(1e-6).ln() + (1.0 - t) * (1.0 - p).max(1e-6).ln();
        // d BCE(σ(z), t) / dz = σ(z) − t
        delta[j] = p - t;
    }
    let mut grad = vec![0.0f32; keys.activation_dim];
    for i in 0..keys.activation_dim {
        for j in 0..n {
            grad[i] += keys.projection[i * n + j] * delta[j];
        }
    }
    (grad, loss)
}

/// Embeds the watermark by fine-tuning `net` on the task data plus the
/// embedding loss. Returns the post-embedding BER report.
pub fn embed(
    net: &mut Network,
    keys: &WatermarkKeys,
    task_xs: &[Tensor],
    task_ys: &[usize],
    cfg: &EmbedConfig,
) -> EmbedReport {
    let t = keys.triggers.len() as f32;
    let mut wm_loss = 0.0;
    for _ in 0..cfg.epochs {
        // -- watermark step: gradient of the WM loss through the triggers --
        let mu = mean_activation(net, keys);
        let (grad_mu, loss) = wm_grad_wrt_mu(keys, &mu);
        wm_loss = loss;
        let inj = Tensor::from_vec(
            &[keys.activation_dim],
            grad_mu.iter().map(|g| g * cfg.lambda / t).collect(),
        );
        for trig in &keys.triggers {
            let acts = net.forward_collect(trig);
            // reshape injection to the activation's true shape (CNN layers)
            let inj_shaped = inj.clone().reshape(acts[keys.layer].shape());
            let zero_out = Tensor::zeros(acts.last().unwrap().shape());
            let grads = net.backward(trig, &acts, &zero_out, &[(keys.layer, inj_shaped)]);
            net.apply_grads(&grads, cfg.lr);
        }
        // -- task step: retain accuracy on the original objective --
        for (x, &y) in task_xs.iter().zip(task_ys) {
            let acts = net.forward_collect(x);
            let (_, g) = softmax_cross_entropy(acts.last().unwrap(), y);
            let grads = net.backward(x, &acts, &g, &[]);
            net.apply_grads(&grads, cfg.lr);
        }
    }
    let (_, ber) = extract(net, keys);
    EmbedReport { ber, wm_loss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{generate_keys, KeyGenConfig};
    use rand::SeedableRng;
    use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer};

    fn small_setup(
        seed: u64,
    ) -> (Network, WatermarkKeys, zkrownn_nn::Dataset) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let gmm = GmmConfig {
            input_shape: vec![16],
            num_classes: 4,
            mean_scale: 1.0,
            noise_std: 0.3,
        };
        let data = generate_gmm(&gmm, 120, &mut rng);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(16, 24, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(24, 4, &mut rng)),
        ]);
        net.train(&data.xs, &data.ys, 8, 0.05);
        let keys = generate_keys(
            &KeyGenConfig {
                layer: 0,
                activation_dim: 24,
                signature_bits: 16,
                num_triggers: 6,
                projection_std: 1.0,
            },
            &data,
            &mut rng,
        );
        (net, keys, data)
    }

    #[test]
    fn embedding_drives_ber_to_zero() {
        let (mut net, keys, data) = small_setup(231);
        let (_, ber_before) = extract(&net, &keys);
        let report = embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
        assert_eq!(report.ber, 0.0, "BER before was {ber_before}");
    }

    #[test]
    fn embedding_preserves_accuracy() {
        let (mut net, keys, data) = small_setup(232);
        let acc_before = net.accuracy(&data.xs, &data.ys);
        embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
        let acc_after = net.accuracy(&data.xs, &data.ys);
        assert!(
            acc_after >= acc_before - 0.05,
            "accuracy dropped from {acc_before} to {acc_after}"
        );
    }

    #[test]
    fn unrelated_model_has_high_ber() {
        let (mut net, keys, data) = small_setup(233);
        embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
        // fresh model never saw the watermark
        let mut rng = rand::rngs::StdRng::seed_from_u64(999);
        let fresh = Network::new(vec![
            Layer::Dense(Dense::new(16, 24, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(24, 4, &mut rng)),
        ]);
        let (_, ber) = extract(&fresh, &keys);
        assert!(ber > 0.2, "fresh model BER unexpectedly low: {ber}");
    }
}
