//! Watermark embedding: fine-tunes the model so the mean activation of the
//! trigger set, projected through the secret matrix and squashed by a
//! sigmoid, reproduces the owner's signature bits.
//!
//! Loss: `L = CE(task) + λ·Σⱼ band((µ·A)ⱼ, wmⱼ)` where `µ` is the mean
//! activation of the trigger inputs at the watermarked layer and `band`
//! penalizes the squared distance of each projection from its signed
//! `[margin, limit]` target band (DeepSigns' BCE term, reshaped so wrong
//! saturated bits keep a gradient and deep bits stay inside the fixed-point
//! sigmoid range). The embedding gradient is injected at that layer through
//! [`zkrownn_nn::Network::backward`]'s injection hook, mirroring DeepSigns'
//! "additional loss term … while fine-tuning".

use crate::extract::{extract, mean_activation};
use crate::keys::WatermarkKeys;
use zkrownn_nn::{softmax_cross_entropy, Network, Tensor};

/// Embedding hyper-parameters.
#[derive(Clone, Debug)]
pub struct EmbedConfig {
    /// Weight of the watermark loss relative to the task loss.
    pub lambda: f32,
    /// Fine-tuning epoch budget. Embedding always runs this many epochs,
    /// then keeps going (up to 8× the budget) only while the watermark has
    /// not yet reached zero BER.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        Self {
            lambda: 10.0,
            epochs: 15,
            lr: 0.01,
        }
    }
}

/// Outcome of an embedding run.
#[derive(Clone, Debug)]
pub struct EmbedReport {
    /// Bit error rate after embedding (0.0 = perfect).
    pub ber: f64,
    /// Final watermark loss (mean squared band residual; 0 = every bit's
    /// projection inside its target band).
    pub wm_loss: f32,
}

/// Fraction of the watermark gradient leaked past a dead ReLU mask during
/// embedding (straight-through estimator).
const RELU_LEAK: f32 = 0.5;

/// Watermark gradient steps per fine-tuning epoch.
const WM_STEPS_PER_EPOCH: usize = 16;

/// Minimum projection depth each signature bit is regressed to (`±`).
/// Deep enough that pruning/fine-tuning attacks don't flip bits.
const TARGET_MARGIN: f32 = 16.0;

/// Maximum projection depth: bits past this are pulled back so fixed-point
/// in-circuit extraction (sigmoid input range `2^7`) never overflows.
const SAFE_LIMIT: f32 = 112.0;

/// Gradient of the watermark loss with respect to the mean activation `µ`,
/// plus the loss value itself (the mean squared band residual — zero once
/// every signature bit's projection sits inside its band).
fn wm_grad_wrt_mu(keys: &WatermarkKeys, mu: &[f32], margin: f32) -> (Vec<f32>, f32) {
    let n = keys.signature.len();
    let proj = keys.project(mu);
    let mut loss = 0.0f32;
    let mut delta = vec![0.0f32; n];
    for j in 0..n {
        // Band regression instead of the BCE gradient: drive each
        // projection into [±margin, ±SAFE_LIMIT]. Unlike BCE this
        // (a) keeps a non-vanishing pull on a saturated-but-wrong bit,
        // (b) embeds deep enough to survive pruning/fine-tuning attacks,
        // and (c) caps the magnitude inside the fixed-point sigmoid
        // gadget's input range. Inside the band the bit is left alone, so
        // satisfied bits don't eat the clipped gradient budget.
        let (lo, hi) = if keys.signature[j] {
            (margin, SAFE_LIMIT)
        } else {
            (-SAFE_LIMIT, -margin)
        };
        let z = proj[j];
        let residual = if z < lo {
            z - lo
        } else if z > hi {
            z - hi
        } else {
            0.0
        };
        loss += residual * residual / n as f32;
        delta[j] = residual * 0.25;
    }
    let mut grad = vec![0.0f32; keys.activation_dim];
    for (i, g) in grad.iter_mut().enumerate() {
        for (j, d) in delta.iter().enumerate() {
            *g += keys.projection[i * n + j] * d;
        }
    }
    (grad, loss)
}

/// Embeds the watermark by fine-tuning `net` on the task data plus the
/// embedding loss. Returns the post-embedding BER report.
pub fn embed(
    net: &mut Network,
    keys: &WatermarkKeys,
    task_xs: &[Tensor],
    task_ys: &[usize],
    cfg: &EmbedConfig,
) -> EmbedReport {
    let t = keys.triggers.len() as f32;
    let mut wm_loss = 0.0;
    for epoch in 0..cfg.epochs.saturating_mul(8) {
        // Past the configured budget, continue only while bits still
        // disagree — convergence depends on the initialization draw, and a
        // fixed count leaves unlucky seeds partially embedded.
        if epoch >= cfg.epochs && extract(net, keys).1 == 0.0 {
            break;
        }
        // -- watermark phase: several small steps with a fresh gradient
        // each, rather than one λ-scaled leap — re-computing µ between
        // steps keeps descent stable where a single large step oscillates.
        // Anneal the depth target: flip the bits at a shallow margin first
        // (cheap in capacity), then deepen toward TARGET_MARGIN as the
        // straight-through leak revives units to carry it.
        let margin = (2.0 + epoch as f32).min(TARGET_MARGIN);
        for _ in 0..WM_STEPS_PER_EPOCH {
            let mu = mean_activation(net, keys);
            let (grad_mu, loss) = wm_grad_wrt_mu(keys, &mu, margin);
            wm_loss = loss;
            // Clip the injected gradient to unit norm: with an unbounded
            // λ-scaled step a bad draw can push every pre-activation
            // negative and kill the ReLU layer (µ = 0 ⇒ no gradient ever
            // flows again), while an over-timid step never flips the
            // stubborn bits.
            let norm = grad_mu.iter().map(|g| g * g).sum::<f32>().sqrt();
            let clip = if norm > 1.0 { 1.0 / norm } else { 1.0 };
            let inj = Tensor::from_vec(
                &[keys.activation_dim],
                grad_mu.iter().map(|g| g * clip * cfg.lambda / t).collect(),
            );
            for trig in &keys.triggers {
                let acts = net.forward_collect(trig);
                // reshape injection to the activation's true shape (CNN layers)
                let inj_shaped = inj.clone().reshape(acts[keys.layer].shape());
                let mut injected = vec![(keys.layer, inj_shaped)];
                // Watermarking a ReLU output can dead-lock: units inactive
                // on every trigger pass no gradient, so the bits they carry
                // never move. Leak a fraction of the gradient past the mask
                // (straight-through estimator) so dead units can revive.
                if keys.layer > 0 && matches!(net.layers[keys.layer], zkrownn_nn::Layer::ReLU) {
                    let leak = Tensor::from_vec(
                        &[keys.activation_dim],
                        grad_mu
                            .iter()
                            .map(|g| g * clip * cfg.lambda * RELU_LEAK / t)
                            .collect(),
                    );
                    injected.push((keys.layer - 1, leak.reshape(acts[keys.layer - 1].shape())));
                }
                let zero_out = Tensor::zeros(acts.last().unwrap().shape());
                let grads = net.backward(trig, &acts, &zero_out, &injected);
                net.apply_grads(&grads, cfg.lr);
            }
        }
        // -- task step: retain accuracy on the original objective --
        // Past the epoch budget the alternating phases can reach an exact
        // tug-of-war fixed point (the task pass undoes the watermark pass
        // verbatim). Progressively thin the task pass so the balance tilts
        // toward the watermark until the remaining bits flip.
        let task_stride = 1 + epoch / cfg.epochs.max(1);
        for (i, (x, &y)) in task_xs.iter().zip(task_ys).enumerate() {
            if i % task_stride != 0 {
                continue;
            }
            let acts = net.forward_collect(x);
            let (_, g) = softmax_cross_entropy(acts.last().unwrap(), y);
            let grads = net.backward(x, &acts, &g, &[]);
            net.apply_grads(&grads, cfg.lr);
        }
    }
    let (_, ber) = extract(net, keys);
    EmbedReport { ber, wm_loss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{generate_keys, KeyGenConfig};
    use rand::SeedableRng;
    use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer};

    fn small_setup(seed: u64) -> (Network, WatermarkKeys, zkrownn_nn::Dataset) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let gmm = GmmConfig {
            input_shape: vec![16],
            num_classes: 4,
            mean_scale: 1.0,
            noise_std: 0.3,
        };
        let data = generate_gmm(&gmm, 120, &mut rng);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(16, 24, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(24, 4, &mut rng)),
        ]);
        net.train(&data.xs, &data.ys, 8, 0.05);
        let keys = generate_keys(
            &KeyGenConfig {
                layer: 0,
                activation_dim: 24,
                signature_bits: 16,
                num_triggers: 6,
                projection_std: 1.0,
            },
            &data,
            &mut rng,
        );
        (net, keys, data)
    }

    #[test]
    fn embedding_drives_ber_to_zero() {
        let (mut net, keys, data) = small_setup(231);
        let (_, ber_before) = extract(&net, &keys);
        let report = embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
        assert_eq!(report.ber, 0.0, "BER before was {ber_before}");
    }

    #[test]
    fn embedding_preserves_accuracy() {
        let (mut net, keys, data) = small_setup(232);
        let acc_before = net.accuracy(&data.xs, &data.ys);
        embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
        let acc_after = net.accuracy(&data.xs, &data.ys);
        assert!(
            acc_after >= acc_before - 0.05,
            "accuracy dropped from {acc_before} to {acc_after}"
        );
    }

    #[test]
    fn unrelated_model_has_high_ber() {
        let (mut net, keys, data) = small_setup(233);
        embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
        // fresh model never saw the watermark
        let mut rng = rand::rngs::StdRng::seed_from_u64(999);
        let fresh = Network::new(vec![
            Layer::Dense(Dense::new(16, 24, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(24, 4, &mut rng)),
        ]);
        let (_, ber) = extract(&fresh, &keys);
        assert!(ber > 0.2, "fresh model BER unexpectedly low: {ber}");
    }
}
