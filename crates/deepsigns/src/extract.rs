//! Watermark extraction (the computation ZKROWNN later proves in zero
//! knowledge): query the model with the trigger keys, average the
//! activations at the watermarked layer, project, squash, threshold and
//! compare against the signature.

use crate::keys::WatermarkKeys;
use zkrownn_nn::{sigmoid, Network};

/// Mean activation of the trigger set at the watermarked layer (the
/// "statistical mean of the obtained activation maps" approximating the
/// Gaussian centers).
pub fn mean_activation(net: &Network, keys: &WatermarkKeys) -> Vec<f32> {
    assert!(!keys.triggers.is_empty(), "no trigger inputs");
    let mut mu = vec![0.0f32; keys.activation_dim];
    for trig in &keys.triggers {
        let acts = net.forward_collect(trig);
        let a = &acts[keys.layer];
        assert_eq!(
            a.len(),
            keys.activation_dim,
            "activation dimension mismatch at layer {}",
            keys.layer
        );
        for (m, &v) in mu.iter_mut().zip(a.data()) {
            *m += v;
        }
    }
    let t = keys.triggers.len() as f32;
    for m in mu.iter_mut() {
        *m /= t;
    }
    mu
}

/// Extracts the watermark; returns `(decoded bits, bit error rate)`.
pub fn extract(net: &Network, keys: &WatermarkKeys) -> (Vec<bool>, f64) {
    let mu = mean_activation(net, keys);
    let proj = keys.project(&mu);
    let decoded: Vec<bool> = proj.iter().map(|&z| sigmoid(z) >= 0.5).collect();
    let errors = decoded
        .iter()
        .zip(&keys.signature)
        .filter(|(a, b)| a != b)
        .count();
    (decoded, errors as f64 / keys.signature.len() as f64)
}

/// Detection decision: ownership is asserted when `BER ≤ threshold`
/// (DeepSigns uses `BER == 0`; a non-zero θ tolerates attack noise).
pub fn detect(net: &Network, keys: &WatermarkKeys, threshold: f64) -> bool {
    extract(net, keys).1 <= threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use zkrownn_nn::{Dense, Layer, Tensor};

    #[test]
    fn mean_activation_averages() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(241);
        let net = Network::new(vec![Layer::Dense(Dense::new(4, 3, &mut rng))]);
        let t1 = Tensor::from_vec(&[4], vec![1.0, 0.0, 0.0, 0.0]);
        let t2 = Tensor::from_vec(&[4], vec![0.0, 1.0, 0.0, 0.0]);
        let keys = WatermarkKeys {
            layer: 0,
            target_class: 0,
            triggers: vec![t1.clone(), t2.clone()],
            projection: vec![0.0; 3 * 2],
            activation_dim: 3,
            signature: vec![false, false],
        };
        let mu = mean_activation(&net, &keys);
        let a1 = net.forward(&t1);
        let a2 = net.forward(&t2);
        for (i, m) in mu.iter().enumerate().take(3) {
            assert!((m - (a1.data()[i] + a2.data()[i]) / 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn random_model_ber_near_half() {
        // with a random projection and random signature, about half the
        // decoded bits disagree
        let mut rng = rand::rngs::StdRng::seed_from_u64(242);
        let net = Network::new(vec![Layer::Dense(Dense::new(8, 16, &mut rng)), Layer::ReLU]);
        use crate::keys::{generate_keys, KeyGenConfig};
        use zkrownn_nn::{generate_gmm, GmmConfig};
        let data = generate_gmm(
            &GmmConfig {
                input_shape: vec![8],
                num_classes: 2,
                mean_scale: 1.0,
                noise_std: 0.3,
            },
            64,
            &mut rng,
        );
        let mut total = 0.0;
        for _ in 0..10 {
            let keys = generate_keys(
                &KeyGenConfig {
                    layer: 1,
                    activation_dim: 16,
                    signature_bits: 32,
                    num_triggers: 4,
                    projection_std: 1.0,
                },
                &data,
                &mut rng,
            );
            total += extract(&net, &keys).1;
        }
        let avg = total / 10.0;
        assert!((avg - 0.5).abs() < 0.2, "average BER {avg}");
    }
}
