//! Watermark key material (the owner's secret).
//!
//! Per DeepSigns (§II-A of the ZKROWNN paper), the keys consist of:
//! * the **target class** `s` whose activation-distribution mean carries
//!   the signature,
//! * the **trigger inputs** `X_key` — a small subset (~1%) of the training
//!   data from that class,
//! * the **projection matrix** `A ∈ ℝ^{M×N}` mapping the `M`-dimensional
//!   mean activation to the `N` signature bits,
//! * the **signature** itself — `N` i.i.d. random bits,
//! * and the index of the layer whose activations are watermarked.

use rand::Rng;
use zkrownn_nn::{Dataset, Tensor};

/// The owner's secret watermark keys.
#[derive(Clone, Debug)]
pub struct WatermarkKeys {
    /// Index of the watermarked layer (the layer whose *output*
    /// activations carry the signature).
    pub layer: usize,
    /// The class whose activation mean is shifted.
    pub target_class: usize,
    /// Trigger inputs (drawn from the training data of `target_class`).
    pub triggers: Vec<Tensor>,
    /// Projection matrix, row-major `M × N` (`M` = activation dimension,
    /// `N` = signature length).
    pub projection: Vec<f32>,
    /// Activation dimension `M`.
    pub activation_dim: usize,
    /// The `N`-bit signature.
    pub signature: Vec<bool>,
}

impl WatermarkKeys {
    /// Number of signature bits `N`.
    pub fn signature_len(&self) -> usize {
        self.signature.len()
    }

    /// Number of trigger inputs `T`.
    pub fn num_triggers(&self) -> usize {
        self.triggers.len()
    }

    /// Projection column `j` dotted with a vector (helper).
    pub fn project(&self, mu: &[f32]) -> Vec<f32> {
        assert_eq!(mu.len(), self.activation_dim);
        let n = self.signature.len();
        let mut out = vec![0.0f32; n];
        for (i, &m) in mu.iter().enumerate() {
            for (j, o) in out.iter_mut().enumerate() {
                *o += m * self.projection[i * n + j];
            }
        }
        out
    }
}

/// Configuration for key generation.
#[derive(Clone, Debug)]
pub struct KeyGenConfig {
    /// Watermarked layer index.
    pub layer: usize,
    /// Activation dimension at that layer.
    pub activation_dim: usize,
    /// Signature length in bits (the paper's benchmarks use 32).
    pub signature_bits: usize,
    /// Number of trigger inputs to select.
    pub num_triggers: usize,
    /// Scale of the Gaussian projection entries.
    pub projection_std: f32,
}

/// Checks that some non-negative activation mean `µ` can realize the
/// signature with every projection inside a signed `[m, 7m]` band.
///
/// Post-ReLU activation means are non-negative, and the in-circuit
/// fixed-point sigmoid bounds how deep a projection may sit relative to the
/// decision margin (|z| < 2⁷), so a usable key must admit a `µ ≥ 0` whose
/// shallowest and deepest bits stay within that ratio. The band is
/// scale-invariant in `µ`, so the unit band stands in for every scale.
/// Solved by projected gradient descent on the convex band-distance QP.
fn signature_is_embeddable(projection: &[f32], signature: &[bool], dim: usize) -> bool {
    let n = signature.len();
    let frob2: f32 = projection.iter().map(|p| p * p).sum();
    if frob2 == 0.0 {
        return false;
    }
    let eta = 4.0 / frob2;
    let mut mu = vec![1.0f32; dim];
    let mut residual = f32::MAX;
    for _ in 0..3000 {
        let mut delta = vec![0.0f32; n];
        residual = 0.0;
        for (j, &s) in signature.iter().enumerate() {
            let z: f32 = (0..dim).map(|i| mu[i] * projection[i * n + j]).sum();
            let (lo, hi) = if s { (1.0, 7.0) } else { (-7.0, -1.0) };
            delta[j] = if z < lo {
                z - lo
            } else if z > hi {
                z - hi
            } else {
                0.0
            };
            residual += delta[j] * delta[j];
        }
        if residual < 1e-6 {
            return true;
        }
        for (i, m) in mu.iter_mut().enumerate() {
            let g: f32 = (0..n).map(|j| projection[i * n + j] * delta[j]).sum();
            *m = (*m - eta * g).max(0.0);
        }
    }
    residual < 1e-6
}

/// How many fresh projection draws [`generate_keys`] tries before settling
/// for the last one.
const MAX_PROJECTION_REDRAWS: usize = 32;

/// Generates fresh watermark keys: random signature, Gaussian projection,
/// and triggers drawn from the dataset restricted to a random target class.
///
/// The projection matrix is redrawn (up to `MAX_PROJECTION_REDRAWS` times)
/// until the signature is geometrically embeddable in the non-negative
/// activation orthant — key generation is owner-side and free to reject
/// degenerate draws that no amount of fine-tuning could embed.
pub fn generate_keys<R: Rng + ?Sized>(
    cfg: &KeyGenConfig,
    data: &Dataset,
    rng: &mut R,
) -> WatermarkKeys {
    let target_class = rng.gen_range(0..data.num_classes);
    let triggers: Vec<Tensor> = data
        .xs
        .iter()
        .zip(&data.ys)
        .filter(|(_, &y)| y == target_class)
        .map(|(x, _)| x.clone())
        .take(cfg.num_triggers)
        .collect();
    assert!(
        triggers.len() == cfg.num_triggers,
        "dataset has too few samples of class {target_class}"
    );
    let signature: Vec<bool> = (0..cfg.signature_bits).map(|_| rng.gen()).collect();
    let mut projection = Vec::new();
    for _ in 0..MAX_PROJECTION_REDRAWS {
        projection = (0..cfg.activation_dim * cfg.signature_bits)
            .map(|_| {
                let u1: f32 = rng.gen_range(1e-7..1.0f32);
                let u2: f32 = rng.gen_range(0.0..1.0f32);
                (-2.0 * u1.ln()).sqrt()
                    * (2.0 * core::f32::consts::PI * u2).cos()
                    * cfg.projection_std
            })
            .collect();
        if signature_is_embeddable(&projection, &signature, cfg.activation_dim) {
            break;
        }
    }
    WatermarkKeys {
        layer: cfg.layer,
        target_class,
        triggers,
        projection,
        activation_dim: cfg.activation_dim,
        signature,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use zkrownn_nn::{generate_gmm, GmmConfig};

    #[test]
    fn keys_have_requested_dimensions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(221);
        let data = generate_gmm(&GmmConfig::mnist_like(), 100, &mut rng);
        let cfg = KeyGenConfig {
            layer: 0,
            activation_dim: 64,
            signature_bits: 32,
            num_triggers: 5,
            projection_std: 1.0,
        };
        let keys = generate_keys(&cfg, &data, &mut rng);
        assert_eq!(keys.signature.len(), 32);
        assert_eq!(keys.triggers.len(), 5);
        assert_eq!(keys.projection.len(), 64 * 32);
    }

    #[test]
    fn triggers_come_from_target_class() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(222);
        let data = generate_gmm(&GmmConfig::mnist_like(), 100, &mut rng);
        let cfg = KeyGenConfig {
            layer: 0,
            activation_dim: 8,
            signature_bits: 8,
            num_triggers: 3,
            projection_std: 1.0,
        };
        let keys = generate_keys(&cfg, &data, &mut rng);
        // every trigger must exactly match a dataset sample of the class
        for t in &keys.triggers {
            let found = data
                .xs
                .iter()
                .zip(&data.ys)
                .any(|(x, &y)| y == keys.target_class && x == t);
            assert!(found);
        }
    }

    #[test]
    fn project_computes_mu_times_a() {
        let keys = WatermarkKeys {
            layer: 0,
            target_class: 0,
            triggers: vec![],
            projection: vec![1.0, 2.0, 3.0, 4.0], // 2×2
            activation_dim: 2,
            signature: vec![true, false],
        };
        let p = keys.project(&[10.0, 100.0]);
        assert_eq!(p, vec![10.0 + 300.0, 20.0 + 400.0]);
    }
}
