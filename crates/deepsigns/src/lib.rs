//! # zkrownn-deepsigns — DeepSigns watermarking
//!
//! The watermarking scheme the paper builds its ownership proofs on
//! (Rouhani et al., ASPLOS 2019): an `N`-bit signature is embedded into the
//! *mean of the activation distribution* of a chosen hidden layer by
//! fine-tuning with an embedding loss; extraction feeds secret trigger
//! inputs, averages the activations, projects them through a secret
//! Gaussian matrix, applies a sigmoid and hard threshold, and measures the
//! bit error rate against the signature.
//!
//! * [`keys`] — key generation (target class, triggers, projection, bits)
//! * [`embed`](mod@embed) — embedding by fine-tuning (task loss + watermark loss)
//! * [`extract`](mod@extract) — extraction and BER / detection decision
//! * [`attacks`] — pruning / fine-tuning / overwriting removal attacks
//!
//! ```no_run
//! use rand::SeedableRng;
//! use zkrownn_deepsigns::{embed, extract, generate_keys, EmbedConfig, KeyGenConfig};
//! use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer, Network};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let data = generate_gmm(&GmmConfig::mnist_like(), 500, &mut rng);
//! let mut net = Network::new(vec![
//!     Layer::Dense(Dense::new(784, 512, &mut rng)),
//!     Layer::ReLU,
//!     Layer::Dense(Dense::new(512, 10, &mut rng)),
//! ]);
//! net.train(&data.xs, &data.ys, 3, 0.02);
//! let keys = generate_keys(
//!     &KeyGenConfig { layer: 0, activation_dim: 512, signature_bits: 32,
//!                     num_triggers: 5, projection_std: 1.0 },
//!     &data, &mut rng);
//! let report = embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
//! assert_eq!(report.ber, 0.0);
//! let (_bits, ber) = extract(&net, &keys);
//! assert_eq!(ber, 0.0);
//! ```

#![warn(missing_docs)]

pub mod attacks;
pub mod embed;
pub mod extract;
pub mod keys;

pub use embed::{embed, EmbedConfig, EmbedReport};
pub use extract::{detect, extract, mean_activation};
pub use keys::{generate_keys, KeyGenConfig, WatermarkKeys};
