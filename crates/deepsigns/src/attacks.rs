//! Watermark-removal attacks.
//!
//! DeepSigns claims (and the ZKROWNN paper inherits) robustness against
//! parameter pruning, model fine-tuning and watermark overwriting. These
//! attack implementations let the test suite and the benchmark harness
//! reproduce those claims on our substrate.

use crate::embed::{embed, EmbedConfig};
use crate::keys::{generate_keys, KeyGenConfig, WatermarkKeys};
use rand::Rng;
use zkrownn_nn::{Layer, Network, Tensor};

/// Global magnitude pruning: zeroes the smallest `fraction` of weights in
/// every parameterized layer.
pub fn prune(net: &mut Network, fraction: f32) {
    assert!((0.0..=1.0).contains(&fraction));
    for layer in net.layers.iter_mut() {
        let w = match layer {
            Layer::Dense(d) => &mut d.w,
            Layer::Conv2d(c) => &mut c.w,
            _ => continue,
        };
        let mut mags: Vec<f32> = w.data().iter().map(|v| v.abs()).collect();
        mags.sort_by(f32::total_cmp);
        let cut = ((mags.len() as f32) * fraction) as usize;
        if cut == 0 {
            continue;
        }
        let threshold = mags[cut - 1];
        for v in w.data_mut().iter_mut() {
            if v.abs() <= threshold {
                *v = 0.0;
            }
        }
    }
}

/// Fine-tuning attack: continues training on (possibly new) task data
/// without the watermark loss, hoping to wash the signature out.
pub fn finetune(net: &mut Network, xs: &[Tensor], ys: &[usize], epochs: usize, lr: f32) {
    net.train(xs, ys, epochs, lr);
}

/// Overwriting attack: an adversary embeds their *own* watermark with
/// fresh keys, attempting to displace the owner's.
pub fn overwrite<R: Rng + ?Sized>(
    net: &mut Network,
    victim_keys: &WatermarkKeys,
    data: &zkrownn_nn::Dataset,
    rng: &mut R,
) -> WatermarkKeys {
    let adversary_keys = generate_keys(
        &KeyGenConfig {
            layer: victim_keys.layer,
            activation_dim: victim_keys.activation_dim,
            signature_bits: victim_keys.signature.len(),
            num_triggers: victim_keys.triggers.len(),
            projection_std: 1.0,
        },
        data,
        rng,
    );
    embed(
        net,
        &adversary_keys,
        &data.xs,
        &data.ys,
        &EmbedConfig::default(),
    );
    adversary_keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use rand::SeedableRng;
    use zkrownn_nn::{generate_gmm, Dense, GmmConfig};

    fn watermarked_setup(seed: u64) -> (Network, WatermarkKeys, zkrownn_nn::Dataset) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let gmm = GmmConfig {
            input_shape: vec![16],
            num_classes: 4,
            mean_scale: 1.0,
            noise_std: 0.3,
        };
        let data = generate_gmm(&gmm, 120, &mut rng);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(16, 24, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(24, 4, &mut rng)),
        ]);
        net.train(&data.xs, &data.ys, 8, 0.05);
        let keys = generate_keys(
            &KeyGenConfig {
                layer: 0,
                activation_dim: 24,
                signature_bits: 16,
                num_triggers: 6,
                projection_std: 1.0,
            },
            &data,
            &mut rng,
        );
        embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
        (net, keys, data)
    }

    #[test]
    fn watermark_survives_moderate_pruning() {
        let (mut net, keys, _) = watermarked_setup(251);
        prune(&mut net, 0.2);
        let (_, ber) = extract(&net, &keys);
        assert!(ber <= 0.1, "BER after 20% pruning: {ber}");
    }

    #[test]
    fn heavy_pruning_eventually_destroys_watermark_and_model() {
        let (mut net, keys, data) = watermarked_setup(252);
        prune(&mut net, 0.99);
        let (_, ber) = extract(&net, &keys);
        let acc = net.accuracy(&data.xs, &data.ys);
        // at 99% pruning the watermark may break — but so does the model,
        // which is exactly the DeepSigns robustness argument
        assert!(ber > 0.0 || acc < 0.5);
    }

    #[test]
    fn watermark_survives_finetuning() {
        let (mut net, keys, data) = watermarked_setup(253);
        finetune(&mut net, &data.xs, &data.ys, 5, 0.01);
        let (_, ber) = extract(&net, &keys);
        assert!(ber <= 0.1, "BER after fine-tuning: {ber}");
    }

    #[test]
    fn watermark_survives_overwriting() {
        // Overwriting robustness is a *capacity* property: the activation
        // space must be large enough to host two independent signatures.
        // Use a wider hidden layer than the other attack tests.
        let mut rng = rand::rngs::StdRng::seed_from_u64(254);
        let gmm = GmmConfig {
            input_shape: vec![16],
            num_classes: 4,
            mean_scale: 1.0,
            noise_std: 0.3,
        };
        let data = generate_gmm(&gmm, 120, &mut rng);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(16, 96, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(96, 4, &mut rng)),
        ]);
        net.train(&data.xs, &data.ys, 8, 0.05);
        let keys = generate_keys(
            &KeyGenConfig {
                layer: 0,
                activation_dim: 96,
                signature_bits: 12,
                num_triggers: 6,
                projection_std: 1.0,
            },
            &data,
            &mut rng,
        );
        embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
        let adv = overwrite(&mut net, &keys, &data, &mut rng);
        let (_, victim_ber) = extract(&net, &keys);
        let (_, adv_ber) = extract(&net, &adv);
        // the adversary embeds their mark, but the victim's stays
        // detectable (well below the ~0.5 BER of an unrelated model)
        assert!(
            victim_ber <= 0.25,
            "victim BER after overwrite: {victim_ber}"
        );
        assert!(adv_ber <= 0.25, "adversary embed failed: {adv_ber}");
    }

    #[test]
    fn pruning_fraction_zero_is_noop() {
        let (net_ref, _, _) = watermarked_setup(256);
        let mut net = net_ref.clone();
        prune(&mut net, 0.0);
        let (w1, w2) = match (&net.layers[0], &net_ref.layers[0]) {
            (Layer::Dense(a), Layer::Dense(b)) => (a.w.clone(), b.w.clone()),
            _ => unreachable!(),
        };
        assert_eq!(w1, w2);
    }
}
