//! Property-based tests of the group laws and point serialization.

use proptest::prelude::*;
use zkrownn_curves::serialize::{
    read_compressed, read_uncompressed, write_compressed, write_uncompressed,
};
use zkrownn_curves::{G1Config, G1Projective, G2Config, G2Projective};
use zkrownn_ff::{Field, Fr};

fn arb_fr() -> impl Strategy<Value = Fr> {
    (any::<u64>(), any::<u64>())
        .prop_map(|(a, b)| Fr::from_u64(a) * Fr::from_u64(b) + Fr::from_u64(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn g1_scalar_distributivity(a in arb_fr(), b in arb_fr()) {
        let g = G1Projective::generator();
        prop_assert_eq!(g.mul_scalar(a) + g.mul_scalar(b), g.mul_scalar(a + b));
    }

    #[test]
    fn g1_scalar_composition(a in arb_fr(), b in arb_fr()) {
        let g = G1Projective::generator();
        prop_assert_eq!(g.mul_scalar(a).mul_scalar(b), g.mul_scalar(a * b));
    }

    #[test]
    fn g1_add_commutes(a in arb_fr(), b in arb_fr()) {
        let g = G1Projective::generator();
        let p = g.mul_scalar(a);
        let q = g.mul_scalar(b);
        prop_assert_eq!(p + q, q + p);
    }

    #[test]
    fn g1_serialization_roundtrips(a in arb_fr()) {
        let p = G1Projective::generator().mul_scalar(a).into_affine();
        let mut buf = Vec::new();
        write_compressed(&p, &mut buf);
        prop_assert_eq!(read_compressed::<G1Config>(&buf), Ok(p));
        let mut buf2 = Vec::new();
        write_uncompressed(&p, &mut buf2);
        prop_assert_eq!(read_uncompressed::<G1Config>(&buf2), Ok(p));
    }

    #[test]
    fn g2_serialization_roundtrips(a in arb_fr()) {
        let p = G2Projective::generator().mul_scalar(a).into_affine();
        let mut buf = Vec::new();
        write_compressed(&p, &mut buf);
        prop_assert_eq!(read_compressed::<G2Config>(&buf), Ok(p));
    }

    #[test]
    fn corrupted_compressed_points_never_panic(bytes in prop::collection::vec(any::<u8>(), 32)) {
        // arbitrary bytes must either parse to a valid curve point or a
        // typed decode error
        if let Ok(p) = read_compressed::<G1Config>(&bytes) {
            prop_assert!(p.is_on_curve());
        }
    }

    #[test]
    fn corrupted_g2_points_never_panic(bytes in prop::collection::vec(any::<u8>(), 64)) {
        if let Ok(p) = read_compressed::<G2Config>(&bytes) {
            prop_assert!(p.is_on_curve());
            prop_assert!(p.is_in_correct_subgroup());
        }
    }

    #[test]
    fn mixed_and_general_addition_agree(a in arb_fr(), b in arb_fr()) {
        let g = G1Projective::generator();
        let p = g.mul_scalar(a);
        let q_affine = g.mul_scalar(b).into_affine();
        let mut mixed = p;
        mixed.add_assign_mixed(&q_affine);
        prop_assert_eq!(mixed, p + q_affine.into_projective());
    }
}
