//! Pins the signed-digit batch-affine Pippenger MSM to the naive
//! `Σ sᵢ·Pᵢ` reference, across sizes (up to 4096 in G1), both groups, and
//! adversarial scalar/point patterns that stress the recoding carry chain
//! and the batch-affine doubling/cancellation branches.

use proptest::prelude::*;
use zkrownn_curves::msm::msm;
use zkrownn_curves::{Affine, G1Projective, Projective, SwCurveConfig};
use zkrownn_ff::{Field, Fr};

fn naive<C: SwCurveConfig>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    bases
        .iter()
        .zip(scalars)
        .fold(Projective::identity(), |acc, (b, s)| acc + b.mul_scalar(*s))
}

/// Deterministic pseudo-random scalars mixing full-width values with the
/// edge cases signed recoding must absorb: 0, ±1, single set bits at window
/// boundaries, and all-ones runs that maximize carry propagation.
fn stress_scalars(n: usize, seed: u64) -> Vec<Fr> {
    (0..n)
        .map(|i| match i % 7 {
            0 => Fr::zero(),
            1 => Fr::one(),
            2 => -Fr::one(),
            3 => Fr::from_u64(1u64 << (i % 64)),
            4 => -Fr::from_u64(u64::MAX),
            5 => Fr::from_u64(seed.wrapping_mul(i as u64) | 1).pow(&[257]),
            _ => Fr::from_u64(seed ^ i as u64) * Fr::from_u64(0x9e37_79b9_7f4a_7c15),
        })
        .collect()
}

/// Small multiples of the generator with duplicates and negations mixed in,
/// so buckets collect equal and opposite points.
fn stress_bases<C: SwCurveConfig>(n: usize, seed: u64) -> Vec<Affine<C>> {
    let g = Projective::<C>::generator();
    (0..n)
        .map(|i| {
            let k = (seed ^ (i as u64 / 3)) % 13 + 1;
            let p = g.mul_scalar(Fr::from_u64(k)).into_affine();
            if i % 5 == 4 {
                p.neg()
            } else {
                p
            }
        })
        .collect()
}

#[test]
fn g1_matches_naive_up_to_4096() {
    for (n, seed) in [(33usize, 1u64), (257, 2), (1024, 3), (4096, 4)] {
        let bases = stress_bases::<zkrownn_curves::G1Config>(n, seed);
        let scalars = stress_scalars(n, seed);
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars), "n = {n}");
    }
}

#[test]
fn g2_matches_naive_up_to_512() {
    for (n, seed) in [(17usize, 5u64), (130, 6), (512, 7)] {
        let bases = stress_bases::<zkrownn_curves::G2Config>(n, seed);
        let scalars = stress_scalars(n, seed);
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars), "n = {n}");
    }
}

#[test]
fn all_identical_points_hit_the_doubling_tree() {
    // every point equal: bucket reduction is pure doubling rounds
    let g = G1Projective::generator().into_affine();
    let n = 64;
    let bases = vec![g; n];
    let scalars = vec![Fr::from_u64(3); n];
    assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
}

#[test]
fn perfectly_cancelling_inputs_sum_to_identity() {
    let g = G1Projective::generator().into_affine();
    let bases = vec![g, g.neg(), g, g.neg()];
    let s = Fr::from_u64(41);
    let scalars = vec![s, s, s, s];
    assert!(msm(&bases, &scalars).is_identity());
}

/// Manual tuning harness for the window-size heuristic (not a correctness
/// test): `cargo test --release -p zkrownn-curves --test msm_reference -- \
/// --ignored --nocapture window_tuning_sweep`.
#[test]
#[ignore]
fn window_tuning_sweep() {
    use std::time::Instant;
    use zkrownn_curves::msm::msm_bigint_with_window;
    use zkrownn_ff::{BigInt256, PrimeField};
    let g = G1Projective::generator();
    for n in [4096usize, 32768] {
        let pairs: Vec<(zkrownn_curves::G1Affine, BigInt256)> = (0..n)
            .map(|i| {
                let s = Fr::from_u64(i as u64 + 1).pow(&[0x1234_5678_9abc_def1]);
                (
                    g.mul_scalar(Fr::from_u64(i as u64 % 97 + 1)).into_affine(),
                    s.into_bigint(),
                )
            })
            .collect();
        let mut reference = None;
        for c in 8..=15 {
            let t = Instant::now();
            let got = msm_bigint_with_window(&pairs, c);
            let dt = t.elapsed();
            println!("n = {n:6}  c = {c:2}  {dt:?}");
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(*r, got, "c = {c}"),
            }
        }
    }
}

fn arb_fr() -> impl Strategy<Value = Fr> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, b, c, d)| {
        Fr::from_u64(a) * Fr::from_u64(b).pow(&[65537]) + Fr::from_u64(c) - Fr::from_u64(d)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn g1_random_matches_naive(
        scalars in prop::collection::vec(arb_fr(), 1..96),
        seed in any::<u64>(),
    ) {
        let bases = stress_bases::<zkrownn_curves::G1Config>(scalars.len(), seed);
        prop_assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }

    #[test]
    fn g2_random_matches_naive(
        scalars in prop::collection::vec(arb_fr(), 1..48),
        seed in any::<u64>(),
    ) {
        let bases = stress_bases::<zkrownn_curves::G2Config>(scalars.len(), seed);
        prop_assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }
}
