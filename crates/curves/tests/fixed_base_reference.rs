//! Pins the signed-digit batch-affine fixed-base kernel to the naive
//! double-and-add reference: for any window width, thread split and scalar
//! mix (including the adversarial encodings the setup produces), every
//! point of `mul_many` must equal `scalar · base` computed bit by bit.

use proptest::prelude::*;
use rand::SeedableRng;
use zkrownn_curves::{FixedBaseTable, G1Affine, G1Projective, G2Projective};
use zkrownn_ff::{Field, Fr};

/// Deterministic but varied scalar soup: random field elements seasoned
/// with the edge encodings (0, ±1, small, r−small, all-window-boundaries).
fn scalar_soup(n: usize, seed: u64) -> Vec<Fr> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
    let edges = [
        Fr::zero(),
        Fr::one(),
        -Fr::one(),
        Fr::from_u64(2),
        -Fr::from_u64(2),
        Fr::from_u64(u64::MAX),
        -Fr::from_u64(u64::MAX),
    ];
    for (i, e) in edges.iter().enumerate() {
        if i < out.len() {
            out[i] = *e;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mul_many_matches_double_and_add(
        log_n in 0u32..7,
        window in 2usize..15,
        threads in 1usize..5,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let g = G1Projective::generator();
        let table = FixedBaseTable::new(g, window);
        let scalars = scalar_soup(n, seed);
        let got = table.mul_many_with_threads(&scalars, threads);
        prop_assert_eq!(got.len(), scalars.len());
        for (s, p) in scalars.iter().zip(got.iter()) {
            // double-and-add over the canonical bigint — the reference
            prop_assert_eq!(*p, g.mul_scalar(*s).into_affine());
        }
    }

    #[test]
    fn single_mul_matches_double_and_add(window in 2usize..17, seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = G1Projective::generator();
        let table = FixedBaseTable::new(g, window);
        let s = Fr::random(&mut rng);
        prop_assert_eq!(table.mul(s), g.mul_scalar(s));
    }
}

#[test]
fn mul_many_matches_double_and_add_n4096() {
    // the full-size deterministic case the proptest shrinks around: 4096
    // scalars at the setup's own suggested window, parallel split
    let g = G1Projective::generator();
    let n = 4096usize;
    let window = FixedBaseTable::<zkrownn_curves::G1Config>::suggested_window(n);
    let table = FixedBaseTable::new(g, window);
    let scalars = scalar_soup(n, 0x5e7);
    let got = table.mul_many(&scalars);
    let expected: Vec<G1Affine> = scalars
        .iter()
        .map(|s| g.mul_scalar(*s).into_affine())
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn g2_mul_many_matches_double_and_add() {
    let g = G2Projective::generator();
    let table = FixedBaseTable::new(g, 6);
    let scalars = scalar_soup(64, 0x9e2);
    let got = table.mul_many(&scalars);
    for (s, p) in scalars.iter().zip(got.iter()) {
        assert_eq!(*p, g.mul_scalar(*s).into_affine());
    }
}
