//! Concrete BN254 (alt_bn128) curve configurations.
//!
//! * `G1`: `y² = x³ + 3` over `Fq`, generator `(1, 2)`, cofactor 1.
//! * `G2`: `y² = x³ + 3/ξ` over `Fq2` (D-type twist, `ξ = 9 + u`), with the
//!   standard generator from EIP-197; cofactor > 1, so deserialization
//!   performs a subgroup check.
//!
//! The G2 generator coordinates are parsed from their published decimal
//! expansions and validated (curve equation + subgroup membership) in tests.

use crate::curve::{Affine, Projective, SwCurveConfig};
use zkrownn_ff::{BigUint, Cached, Field, Fq, Fq2, PrimeField};

/// BN254 G1 configuration.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct G1Config;

impl SwCurveConfig for G1Config {
    type BaseField = Fq;

    fn coeff_b() -> Fq {
        Fq::from_u64(3)
    }

    fn generator() -> Affine<Self> {
        Affine::new_unchecked(Fq::from_u64(1), Fq::from_u64(2))
    }

    const HAS_COFACTOR: bool = false;
    const NAME: &'static str = "G1";
}

/// BN254 G2 configuration (sextic twist over `Fq2`).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct G2Config;

fn fq_from_decimal(s: &str) -> Fq {
    let v = BigUint::from_decimal(s);
    Fq::from_bigint(zkrownn_ff::BigInt256(v.to_limbs::<4>())).expect("below modulus")
}

impl SwCurveConfig for G2Config {
    type BaseField = Fq2;

    fn coeff_b() -> Fq2 {
        static B: Cached<Fq2> = Cached::new();
        B.get_or_init(|| {
            // b' = 3/ξ  (D-type twist)
            Fq2::from_u64(3) * Fq2::xi().inverse().expect("ξ != 0")
        })
    }

    fn generator() -> Affine<Self> {
        static G: Cached<Affine<G2Config>> = Cached::new();
        G.get_or_init(|| {
            let x = Fq2::new(
                fq_from_decimal(
                    "10857046999023057135944570762232829481370756359578518086990519993285655852781",
                ),
                fq_from_decimal(
                    "11559732032986387107991004021392285783925812861821192530917403151452391805634",
                ),
            );
            let y = Fq2::new(
                fq_from_decimal(
                    "8495653923123431417604973247489272438418190587263600148770280649306958101930",
                ),
                fq_from_decimal(
                    "4082367875863433681332203403145435568316851327593401208105741076214120093531",
                ),
            );
            Affine::new_unchecked(x, y)
        })
    }

    const HAS_COFACTOR: bool = true;
    const NAME: &'static str = "G2";
}

/// A BN254 G1 point in affine coordinates.
pub type G1Affine = Affine<G1Config>;
/// A BN254 G1 point in Jacobian coordinates.
pub type G1Projective = Projective<G1Config>;
/// A BN254 G2 point in affine coordinates.
pub type G2Affine = Affine<G2Config>;
/// A BN254 G2 point in Jacobian coordinates.
pub type G2Projective = Projective<G2Config>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use zkrownn_ff::Fr;

    #[test]
    fn g1_generator_on_curve() {
        assert!(G1Config::generator().is_on_curve());
    }

    #[test]
    fn g2_generator_on_curve() {
        assert!(G2Config::generator().is_on_curve());
    }

    #[test]
    fn generators_have_order_r() {
        let g1 = G1Config::generator().mul_bigint(&Fr::MODULUS.0);
        assert!(g1.is_identity());
        let g2 = G2Config::generator().mul_bigint(&Fr::MODULUS.0);
        assert!(g2.is_identity());
    }

    #[test]
    fn group_law_consistency_g1() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        let g = G1Projective::generator();
        for _ in 0..10 {
            let a = Fr::random(&mut rng);
            let b = Fr::random(&mut rng);
            let lhs = g.mul_scalar(a) + g.mul_scalar(b);
            let rhs = g.mul_scalar(a + b);
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn group_law_consistency_g2() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(52);
        let g = G2Projective::generator();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        assert_eq!(g.mul_scalar(a) + g.mul_scalar(b), g.mul_scalar(a + b));
    }

    #[test]
    fn double_matches_add_self() {
        let g = G1Projective::generator();
        assert_eq!(g.double(), g.add(&g));
        let mut rng = rand::rngs::StdRng::seed_from_u64(53);
        let p = g.mul_scalar(Fr::random(&mut rng));
        assert_eq!(p.double(), p.add(&p));
    }

    #[test]
    fn mixed_add_matches_general_add() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(54);
        let g = G1Projective::generator();
        let p = g.mul_scalar(Fr::random(&mut rng));
        let q = g.mul_scalar(Fr::random(&mut rng));
        let q_aff = q.into_affine();
        let mut acc = p;
        acc.add_assign_mixed(&q_aff);
        assert_eq!(acc, p + q);
    }

    #[test]
    fn identity_edge_cases() {
        let id = G1Projective::identity();
        let g = G1Projective::generator();
        assert_eq!(id + g, g);
        assert_eq!(g + id, g);
        assert_eq!(g - g, id);
        assert_eq!(id.double(), id);
        let mut acc = G1Projective::identity();
        acc.add_assign_mixed(&G1Affine::identity());
        assert!(acc.is_identity());
    }

    #[test]
    fn batch_into_affine_matches_individual() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let g = G1Projective::generator();
        let mut pts: Vec<G1Projective> =
            (0..9).map(|_| g.mul_scalar(Fr::random(&mut rng))).collect();
        pts.push(G1Projective::identity());
        let batch = G1Projective::batch_into_affine(&pts);
        for (p, a) in pts.iter().zip(batch.iter()) {
            assert_eq!(p.into_affine(), *a);
        }
    }

    #[test]
    fn negation_in_affine_and_projective_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(56);
        let p = G1Projective::generator().mul_scalar(Fr::random(&mut rng));
        assert_eq!(p.neg().into_affine(), p.into_affine().neg());
        assert!((p + p.neg()).is_identity());
    }
}
