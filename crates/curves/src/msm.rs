//! Multi-scalar multiplication (Pippenger's bucket method).
//!
//! This is the prover's hot loop in Groth16: each proof is a handful of MSMs
//! over up to millions of points. Windows are processed in parallel across
//! the machine's cores with `std::thread::scope` (no external thread-pool
//! dependency).

use crate::curve::{Affine, Projective, SwCurveConfig};
use zkrownn_ff::{BigInt256, Field, Fr, PrimeField};

/// Chooses a Pippenger window size for `n` non-trivial terms.
fn window_size(n: usize) -> usize {
    if n < 32 {
        3
    } else {
        // ~ln(n) + 2, the usual asymptotic sweet spot
        (usize::BITS as usize - n.leading_zeros() as usize) * 69 / 100 + 2
    }
}

/// Computes `Σ scalarᵢ · basesᵢ`.
///
/// `bases` and `scalars` must have equal length; identity points and zero
/// scalars are skipped.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn msm<C: SwCurveConfig>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    assert_eq!(
        bases.len(),
        scalars.len(),
        "msm: bases and scalars must have equal length"
    );
    // Filter trivial terms once, up front.
    let pairs: Vec<(Affine<C>, BigInt256)> = bases
        .iter()
        .zip(scalars.iter())
        .filter(|(b, s)| !b.is_identity() && !s.is_zero())
        .map(|(b, s)| (*b, s.into_bigint()))
        .collect();
    msm_bigint(&pairs)
}

/// Pippenger over pre-filtered `(base, canonical scalar)` pairs.
pub fn msm_bigint<C: SwCurveConfig>(pairs: &[(Affine<C>, BigInt256)]) -> Projective<C> {
    if pairs.is_empty() {
        return Projective::identity();
    }
    let c = window_size(pairs.len());
    let num_bits = 254usize;
    let num_windows = num_bits.div_ceil(c);

    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(num_windows);

    let mut window_sums = vec![Projective::<C>::identity(); num_windows];
    std::thread::scope(|scope| {
        for (t, chunk) in window_sums
            .chunks_mut(num_windows.div_ceil(threads))
            .enumerate()
        {
            let first_window = t * num_windows.div_ceil(threads);
            scope.spawn(move || {
                for (i, out) in chunk.iter_mut().enumerate() {
                    *out = window_sum(pairs, (first_window + i) * c, c);
                }
            });
        }
    });

    // total = Σ window_sums[w] · 2^(w·c), evaluated Horner-style from the top
    let mut total = Projective::identity();
    for w in (0..num_windows).rev() {
        for _ in 0..c {
            total = total.double();
        }
        total += window_sums[w];
    }
    total
}

/// Accumulates one `c`-bit window starting at bit `shift`.
fn window_sum<C: SwCurveConfig>(
    pairs: &[(Affine<C>, BigInt256)],
    shift: usize,
    c: usize,
) -> Projective<C> {
    let mask = (1u64 << c) - 1;
    let mut buckets = vec![Projective::<C>::identity(); (1 << c) - 1];
    for (base, scalar) in pairs {
        let digit = extract_bits(scalar, shift, c) & mask;
        if digit != 0 {
            buckets[(digit - 1) as usize].add_assign_mixed(base);
        }
    }
    // Σ k·bucket_k via running suffix sums
    let mut running = Projective::identity();
    let mut acc = Projective::identity();
    for b in buckets.iter().rev() {
        running += *b;
        acc += running;
    }
    acc
}

/// Reads up to 64 bits of `v` starting at bit `shift` (little-endian).
fn extract_bits(v: &BigInt256, shift: usize, width: usize) -> u64 {
    if shift >= 256 {
        return 0;
    }
    let limb = shift / 64;
    let bit = shift % 64;
    let mut out = v.0[limb] >> bit;
    if bit + width > 64 && limb + 1 < 4 {
        out |= v.0[limb + 1] << (64 - bit);
    }
    out & ((1u64 << width) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::{G1Affine, G1Projective, G2Projective};
    use rand::SeedableRng;
    use zkrownn_ff::Field;

    fn naive<C: SwCurveConfig>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
        bases
            .iter()
            .zip(scalars)
            .fold(Projective::identity(), |acc, (b, s)| acc + b.mul_scalar(*s))
    }

    #[test]
    fn msm_matches_naive_g1() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let g = G1Projective::generator();
        for n in [0usize, 1, 2, 7, 33, 150] {
            let bases: Vec<G1Affine> = (0..n)
                .map(|_| g.mul_scalar(Fr::random(&mut rng)).into_affine())
                .collect();
            let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars), "n = {n}");
        }
    }

    #[test]
    fn msm_matches_naive_g2() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(62);
        let g = G2Projective::generator();
        let bases: Vec<_> = (0..40)
            .map(|_| g.mul_scalar(Fr::random(&mut rng)).into_affine())
            .collect();
        let scalars: Vec<Fr> = (0..40).map(|_| Fr::random(&mut rng)).collect();
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }

    #[test]
    fn msm_skips_zero_scalars_and_identity_points() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(63);
        let g = G1Projective::generator();
        let mut bases: Vec<G1Affine> = (0..10)
            .map(|_| g.mul_scalar(Fr::random(&mut rng)).into_affine())
            .collect();
        let mut scalars: Vec<Fr> = (0..10).map(|_| Fr::random(&mut rng)).collect();
        bases[3] = G1Affine::identity();
        scalars[7] = Fr::zero();
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }

    #[test]
    fn extract_bits_spans_limb_boundaries() {
        let v = BigInt256([u64::MAX, 0b1011, 0, 0]);
        assert_eq!(extract_bits(&v, 60, 8), 0b1011_1111);
        assert_eq!(extract_bits(&v, 64, 4), 0b1011);
        assert_eq!(extract_bits(&v, 252, 10), 0);
    }
}
