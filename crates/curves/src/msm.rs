//! Multi-scalar multiplication (Pippenger's bucket method, signed digits).
//!
//! This is the prover's hot loop in Groth16: each proof is a handful of MSMs
//! over up to millions of points. Three techniques stack here:
//!
//! * **signed-digit (wNAF-style) windows** — scalars are recoded into
//!   digits in `[−2^(c−1), 2^(c−1)]`, so a window needs `2^(c−1)` buckets
//!   instead of `2^c − 1` (negative digits add the negated point, which is
//!   free in affine form). This halves the bucket-reduction cost;
//! * **batch-affine bucket accumulation** — the points landing in each
//!   bucket are summed by rounds of pairwise *affine* additions whose
//!   division is shared across the whole window via Montgomery's batch
//!   inversion (the same trick `curve.rs` uses for `batch_into_affine`):
//!   ~5 field multiplications per addition instead of ~11 for a Jacobian
//!   mixed add;
//! * **window parallelism** — windows are processed across the machine's
//!   cores with `std::thread::scope` (no external thread-pool dependency);
//!   the digit matrix is recoded once up front so every window reads its
//!   digits independently of the carry chain.
//!
//! The final Horner reduction skips trailing identity windows: canonical
//! BN254 scalars rarely populate the top window (and the signed-digit carry
//! window is almost always empty), so paying `c` doublings for each of them
//! would be pure waste.

use crate::curve::{Affine, Projective, SwCurveConfig};
use alloc::vec;
use alloc::vec::Vec;
use zkrownn_ff::{BigInt256, Field, Fr, PrimeField};

/// Chooses a Pippenger window size for `n` non-trivial terms.
///
/// Signed digits halve the bucket count, which moves the sweet spot ~1.5
/// windows *down* from the classic `ln n + 2`: measured on the BN254 G1
/// sweep (`window_tuning_sweep`), plain `~ln n` minimizes wall clock from
/// 4k through 128k points.
fn window_size(n: usize) -> usize {
    if n < 32 {
        3
    } else {
        ((usize::BITS as usize - n.leading_zeros() as usize) * 69 / 100).max(3)
    }
}

/// Computes `Σ scalarᵢ · basesᵢ`.
///
/// `bases` and `scalars` must have equal length; identity points and zero
/// scalars are skipped. Scalars above `r/2` are balanced to `(r − s, −P)`:
/// circuit assignments are full of small *negative* fixed-point values
/// whose canonical form is a full-width integer, and balancing them back
/// to small magnitudes empties every high window (which the Horner
/// reduction then skips outright).
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn msm<C: SwCurveConfig>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    assert_eq!(
        bases.len(),
        scalars.len(),
        "msm: bases and scalars must have equal length"
    );
    let half_modulus = Fr::MODULUS.shr(1);
    // Filter trivial terms and balance high scalars once, up front.
    let pairs: Vec<(Affine<C>, BigInt256)> = bases
        .iter()
        .zip(scalars.iter())
        .filter(|(b, s)| !b.is_identity() && !s.is_zero())
        .map(|(b, s)| {
            let repr = s.into_bigint();
            if repr.const_cmp(&half_modulus) > 0 {
                (b.neg(), Fr::MODULUS.sub_with_borrow(&repr).0)
            } else {
                (*b, repr)
            }
        })
        .collect();
    msm_bigint(&pairs)
}

/// Pippenger over pre-filtered `(base, canonical scalar)` pairs.
pub fn msm_bigint<C: SwCurveConfig>(pairs: &[(Affine<C>, BigInt256)]) -> Projective<C> {
    msm_bigint_with_window(pairs, window_size(pairs.len()))
}

/// [`msm_bigint`] with an explicit window size `c` (exposed for tuning
/// sweeps; `c` must be in `2..=24`).
pub fn msm_bigint_with_window<C: SwCurveConfig>(
    pairs: &[(Affine<C>, BigInt256)],
    c: usize,
) -> Projective<C> {
    assert!((2..=24).contains(&c), "window size out of range");
    if pairs.is_empty() {
        return Projective::identity();
    }
    // canonical BN254 scalars are 254 bits; one extra window absorbs the
    // signed-digit carry out of the top bits
    let num_bits = 254usize;
    let num_windows = num_bits.div_ceil(c) + 1;

    let digits = signed_digits(pairs, c, num_windows);

    let mut window_sums = vec![Projective::<C>::identity(); num_windows];
    #[cfg(feature = "std")]
    {
        let threads = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            .min(num_windows);
        std::thread::scope(|scope| {
            for (t, chunk) in window_sums
                .chunks_mut(num_windows.div_ceil(threads))
                .enumerate()
            {
                let digits = &digits;
                let first_window = t * num_windows.div_ceil(threads);
                scope.spawn(move || {
                    let mut scratch = WindowScratch::new(c);
                    for (i, out) in chunk.iter_mut().enumerate() {
                        *out = window_sum(pairs, digits, first_window + i, c, &mut scratch);
                    }
                });
            }
        });
    }
    #[cfg(not(feature = "std"))]
    {
        let mut scratch = WindowScratch::new(c);
        for (i, out) in window_sums.iter_mut().enumerate() {
            *out = window_sum(pairs, &digits, i, c, &mut scratch);
        }
    }

    // total = Σ window_sums[w] · 2^(w·c), evaluated Horner-style from the
    // highest *populated* window — trailing identity windows cost nothing
    let Some(top) = window_sums.iter().rposition(|w| !w.is_identity()) else {
        return Projective::identity();
    };
    let mut total = window_sums[top];
    for w in (0..top).rev() {
        for _ in 0..c {
            total = total.double();
        }
        total += window_sums[w];
    }
    total
}

/// Transpose block width for the digit matrix (rows per tile; the tile is
/// `DIGIT_BLOCK · num_windows · 4` bytes ≈ 100 KB, L2-resident).
const DIGIT_BLOCK: usize = 1024;

/// Recodes every scalar into signed base-`2^c` digits, **column-major**:
/// `digits[w · n + i] ∈ [−2^(c−1), 2^(c−1)]` with
/// `scalar_i = Σ_w digit · 2^(w·c)`.
///
/// The carry chain runs once per scalar here so the per-window bucket
/// passes can read any window's digits independently (and in parallel);
/// the column-major layout makes each window pass one sequential stream
/// instead of re-touching every row's cache line. Recoding goes through a
/// row-major tile of [`DIGIT_BLOCK`] scalars that is transposed out while
/// hot, so neither side pays strided misses over the full matrix.
fn signed_digits<C: SwCurveConfig>(
    pairs: &[(Affine<C>, BigInt256)],
    c: usize,
    num_windows: usize,
) -> Vec<i32> {
    let half = 1i64 << (c - 1);
    let full = 1i64 << c;
    let n = pairs.len();
    let mut digits = vec![0i32; n * num_windows];
    let mut tile = vec![0i32; DIGIT_BLOCK.min(n) * num_windows];
    for (block_idx, block) in pairs.chunks(DIGIT_BLOCK).enumerate() {
        let base_row = block_idx * DIGIT_BLOCK;
        for (r, (_, scalar)) in block.iter().enumerate() {
            let mut carry = 0i64;
            for (w, slot) in tile[r * num_windows..][..num_windows]
                .iter_mut()
                .enumerate()
            {
                let raw = scalar.bits64(w * c, c) as i64 + carry;
                let digit = if raw >= half {
                    carry = 1;
                    raw - full
                } else {
                    carry = 0;
                    raw
                };
                *slot = digit as i32;
            }
            debug_assert_eq!(carry, 0, "carry out of a 254-bit scalar");
        }
        for w in 0..num_windows {
            for r in 0..block.len() {
                digits[w * n + base_row + r] = tile[r * num_windows + w];
            }
        }
    }
    digits
}

/// Reusable per-thread scratch for [`window_sum`]: the bucket bookkeeping
/// and the flat point buffer survive across a thread's windows, so a
/// `k`-window MSM pays one set of allocations, not `k`.
struct WindowScratch<C: SwCurveConfig> {
    lens: Vec<u32>,
    starts: Vec<u32>,
    cursor: Vec<u32>,
    flat: Vec<Affine<C>>,
    denoms: Vec<C::BaseField>,
    inv_prefix: Vec<C::BaseField>,
}

impl<C: SwCurveConfig> WindowScratch<C> {
    fn new(c: usize) -> Self {
        let nb = 1usize << (c - 1);
        Self {
            lens: vec![0; nb],
            starts: vec![0; nb],
            cursor: vec![0; nb],
            flat: Vec::new(),
            denoms: Vec::new(),
            inv_prefix: Vec::new(),
        }
    }
}

/// Accumulates window `w`: scatter points into per-|digit| bucket segments,
/// tree-reduce each bucket with batch-affine rounds, then suffix-sum the
/// `2^(c−1)` bucket values.
fn window_sum<C: SwCurveConfig>(
    pairs: &[(Affine<C>, BigInt256)],
    digits: &[i32],
    w: usize,
    c: usize,
    scratch: &mut WindowScratch<C>,
) -> Projective<C> {
    let nb = 1usize << (c - 1);
    let (lens, starts, cursor) = (&mut scratch.lens, &mut scratch.starts, &mut scratch.cursor);
    let col = &digits[w * pairs.len()..][..pairs.len()];

    // counting sort by |digit| into one flat scratch buffer
    lens.fill(0);
    for &d in col {
        if d != 0 {
            lens[d.unsigned_abs() as usize - 1] += 1;
        }
    }
    let mut acc = 0u32;
    for (s, l) in starts.iter_mut().zip(lens.iter()) {
        *s = acc;
        acc += l;
    }
    // every slot in [0, acc) is written by the scatter below, so the
    // buffer only ever *grows* — stale points past `acc` are never read
    if scratch.flat.len() < acc as usize {
        scratch.flat.resize(acc as usize, Affine::identity());
    }
    let flat = &mut scratch.flat[..acc as usize];
    cursor.copy_from_slice(starts);
    for (row, (base, _)) in pairs.iter().enumerate() {
        let d = col[row];
        if d == 0 {
            continue;
        }
        let k = d.unsigned_abs() as usize - 1;
        flat[cursor[k] as usize] = if d < 0 { base.neg() } else { *base };
        cursor[k] += 1;
    }

    batch_affine_reduce::<C>(
        flat,
        starts,
        lens,
        &mut scratch.denoms,
        &mut scratch.inv_prefix,
    );

    // Σ k·bucket_k via running suffix sums, entered at the top populated
    // bucket (everything above contributes nothing)
    let Some(top) = (0..nb).rev().find(|&k| lens[k] == 1) else {
        return Projective::identity();
    };
    let mut running = Projective::<C>::identity();
    let mut total = Projective::<C>::identity();
    for k in (0..=top).rev() {
        if lens[k] == 1 {
            running.add_assign_mixed(&flat[starts[k] as usize]);
        }
        total += running;
    }
    // the skipped buckets top+1..nb each owed one copy of `running`, which
    // is zero there — nothing to add
    total
}

/// Collapses every bucket segment of `flat` to at most one point by rounds
/// of pairwise affine additions; each round shares a single field inversion
/// across all pairs of all buckets (Montgomery batch inversion).
///
/// `starts[k]`/`lens[k]` delimit bucket `k`'s segment; on return
/// `lens[k] ∈ {0, 1}` and the surviving point (if any) sits at `starts[k]`.
fn batch_affine_reduce<C: SwCurveConfig>(
    flat: &mut [Affine<C>],
    starts: &[u32],
    lens: &mut [u32],
    denoms: &mut Vec<C::BaseField>,
    inv_prefix: &mut Vec<C::BaseField>,
) {
    loop {
        // Phase A: one denominator per pair, in bucket-then-pair order.
        denoms.clear();
        for (k, &len) in lens.iter().enumerate() {
            let s = starts[k] as usize;
            for t in 0..(len as usize) / 2 {
                let p = &flat[s + 2 * t];
                let q = &flat[s + 2 * t + 1];
                denoms.push(if p.infinity || q.infinity {
                    C::BaseField::one()
                } else if p.x == q.x {
                    // doubling needs 1/(2y); the y₂ = −y₁ cancellation case
                    // pushes 2y too, but its inverse is never read
                    p.y.double()
                } else {
                    q.x - p.x
                });
            }
        }
        if denoms.is_empty() {
            return;
        }
        C::BaseField::batch_inverse_with_scratch(denoms, inv_prefix);

        // Phase B: apply the additions in place. Pair t of a bucket reads
        // slots 2t/2t+1 and writes slot t, so forward order never clobbers
        // an unread source; odd survivors move down after their bucket.
        let mut next = 0usize;
        for (k, len) in lens.iter_mut().enumerate() {
            let l = *len as usize;
            if l < 2 {
                continue;
            }
            let s = starts[k] as usize;
            for t in 0..l / 2 {
                let p = flat[s + 2 * t];
                let q = flat[s + 2 * t + 1];
                let inv = denoms[next];
                next += 1;
                flat[s + t] = add_affine(&p, &q, inv);
            }
            if l % 2 == 1 {
                flat[s + l / 2] = flat[s + l - 1];
            }
            *len = (l as u32).div_ceil(2);
        }
    }
}

/// Incremental MSM over a stream of `(bases, scalars)` chunks.
///
/// `Σᵢ scalarᵢ · baseᵢ` distributes over any partition of the index set,
/// so feeding a vector family chunk-by-chunk and summing the per-chunk
/// Pippenger results yields **exactly** the same group element as one
/// monolithic [`msm`] call — the chunked prover path is byte-identical to
/// the in-memory one after affine normalization, not merely close.
///
/// This is the entry point the store-backed prover uses: it never holds
/// more than one decoded chunk of bases while the accumulator carries a
/// single projective running sum.
#[derive(Debug, Clone)]
pub struct MsmAccumulator<C: SwCurveConfig> {
    acc: Projective<C>,
    terms: usize,
}

impl<C: SwCurveConfig> Default for MsmAccumulator<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: SwCurveConfig> MsmAccumulator<C> {
    /// An empty accumulator (identity sum).
    pub fn new() -> Self {
        Self {
            acc: Projective::identity(),
            terms: 0,
        }
    }

    /// Adds one chunk's worth of terms: `Σ scalarᵢ · baseᵢ` over the slices.
    ///
    /// # Panics
    /// Panics if the slice lengths differ (same contract as [`msm`]).
    pub fn accumulate(&mut self, bases: &[Affine<C>], scalars: &[Fr]) {
        self.acc += msm(bases, scalars);
        self.terms += bases.len();
    }

    /// Total number of terms accumulated so far (including trivial ones).
    pub fn terms(&self) -> usize {
        self.terms
    }

    /// The running sum.
    pub fn finish(self) -> Projective<C> {
        self.acc
    }
}

/// Affine `p + q` given the precomputed (batch-)inverted denominator:
/// `1/(x₂−x₁)` for distinct x, `1/(2y)` for a doubling. Shared with the
/// fixed-base keygen kernel, which batches the same way per window round.
pub(crate) fn add_affine<C: SwCurveConfig>(
    p: &Affine<C>,
    q: &Affine<C>,
    inv: C::BaseField,
) -> Affine<C> {
    if p.infinity {
        return *q;
    }
    if q.infinity {
        return *p;
    }
    let lambda = if p.x == q.x {
        if p.y != q.y || p.y.is_zero() {
            // q = −p (prime-order curves have no y = 0 points, but the
            // guard keeps the kernel total for any SW config)
            return Affine::identity();
        }
        // λ = 3x² / 2y
        let xx = p.x.square();
        (xx.double() + xx) * inv
    } else {
        // λ = (y₂ − y₁) / (x₂ − x₁)
        (q.y - p.y) * inv
    };
    let x3 = lambda.square() - p.x - q.x;
    let y3 = lambda * (p.x - x3) - p.y;
    Affine::new_unchecked(x3, y3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::{G1Affine, G1Projective, G2Projective};
    use rand::SeedableRng;
    use zkrownn_ff::Field;

    fn naive<C: SwCurveConfig>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
        bases
            .iter()
            .zip(scalars)
            .fold(Projective::identity(), |acc, (b, s)| acc + b.mul_scalar(*s))
    }

    #[test]
    fn msm_matches_naive_g1() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let g = G1Projective::generator();
        for n in [0usize, 1, 2, 7, 33, 150] {
            let bases: Vec<G1Affine> = (0..n)
                .map(|_| g.mul_scalar(Fr::random(&mut rng)).into_affine())
                .collect();
            let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars), "n = {n}");
        }
    }

    #[test]
    fn msm_matches_naive_g2() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(62);
        let g = G2Projective::generator();
        let bases: Vec<_> = (0..40)
            .map(|_| g.mul_scalar(Fr::random(&mut rng)).into_affine())
            .collect();
        let scalars: Vec<Fr> = (0..40).map(|_| Fr::random(&mut rng)).collect();
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }

    #[test]
    fn msm_skips_zero_scalars_and_identity_points() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(63);
        let g = G1Projective::generator();
        let mut bases: Vec<G1Affine> = (0..10)
            .map(|_| g.mul_scalar(Fr::random(&mut rng)).into_affine())
            .collect();
        let mut scalars: Vec<Fr> = (0..10).map(|_| Fr::random(&mut rng)).collect();
        bases[3] = G1Affine::identity();
        scalars[7] = Fr::zero();
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }

    #[test]
    fn msm_handles_repeated_and_opposite_points() {
        // forces the doubling and cancellation branches of the batch-affine
        // bucket reduction: equal points share a bucket, opposite points
        // annihilate to the identity
        let g = G1Projective::generator().into_affine();
        let bases = vec![g, g, g, g.neg(), g.neg(), g];
        let two = Fr::from_u64(2);
        let scalars = vec![two, two, two, two, two, two];
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }

    #[test]
    fn chunked_accumulator_matches_monolithic_msm() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(65);
        let g = G1Projective::generator();
        let bases: Vec<G1Affine> = (0..97)
            .map(|_| g.mul_scalar(Fr::random(&mut rng)).into_affine())
            .collect();
        let scalars: Vec<Fr> = (0..97).map(|_| Fr::random(&mut rng)).collect();
        let whole = msm(&bases, &scalars).into_affine();
        for chunk in [1usize, 7, 32, 97, 200] {
            let mut acc = MsmAccumulator::new();
            for (b, s) in bases.chunks(chunk).zip(scalars.chunks(chunk)) {
                acc.accumulate(b, s);
            }
            assert_eq!(acc.terms(), bases.len());
            // byte-identical after normalization, not just group-equal
            assert_eq!(acc.finish().into_affine(), whole, "chunk = {chunk}");
        }
    }

    #[test]
    fn signed_digits_recompose_scalars() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(64);
        let g = G1Projective::generator().into_affine();
        for c in [3usize, 7, 12] {
            let num_windows = 254usize.div_ceil(c) + 1;
            let pairs: Vec<(G1Affine, BigInt256)> = (0..5)
                .map(|_| (g, Fr::random(&mut rng).into_bigint()))
                .chain([
                    (g, Fr::zero().into_bigint()),
                    (g, (-Fr::one()).into_bigint()),
                ])
                .collect();
            let digits = signed_digits(&pairs, c, num_windows);
            for (row, (_, scalar)) in pairs.iter().enumerate() {
                // Σ digit · 2^(wc) over Fr must reproduce the scalar
                let mut acc = Fr::zero();
                let mut base = Fr::one();
                let step = Fr::from_u64(1u64 << c);
                for w in 0..num_windows {
                    let d = digits[w * pairs.len() + row];
                    acc += Fr::from_i128(i128::from(d)) * base;
                    base *= step;
                }
                assert_eq!(acc.into_bigint(), *scalar, "c = {c}, row {row}");
            }
        }
    }

    #[test]
    fn bits64_extraction_spans_limb_boundaries() {
        let v = BigInt256([u64::MAX, 0b1011, 0, 0]);
        assert_eq!(v.bits64(60, 8), 0b1011_1111);
        assert_eq!(v.bits64(64, 4), 0b1011);
        assert_eq!(v.bits64(252, 10), 0);
    }
}
