//! Fixed-base windowed scalar multiplication — the trusted-setup kernel.
//!
//! The Groth16 setup multiplies a *single* base (the group generator, or
//! `γ⁻¹`/`δ⁻¹`-scaled variants) by millions of distinct scalars. Three
//! techniques stack here, mirroring the prover's MSM kernel:
//!
//! * **signed-digit windows** — scalars are recoded once into digits in
//!   `[−2^(w−1), 2^(w−1)]`, so each window's table row needs only
//!   `2^(w−1)` entries (`1·B, 2·B, …, 2^(w−1)·B`; negative digits add the
//!   negated entry, which is free in affine form). This halves both the
//!   table-construction cost and the table's cache footprint;
//! * **batch-affine accumulation** — [`FixedBaseTable::mul_many`] walks the
//!   windows in lockstep across *all* scalars: each window round performs
//!   one purely affine addition per active scalar, sharing a single field
//!   inversion across the whole round via Montgomery's batch-inversion
//!   trick (~6 field multiplications per addition instead of ~11 for a
//!   Jacobian mixed add). Because the accumulators *stay* affine, the
//!   result vector needs no final per-point normalization at all — the
//!   table itself is likewise normalized with one batch inversion at
//!   construction instead of one per row;
//! * **scalar parallelism** — the scalar set splits across cores with
//!   `std::thread::scope` (no external thread-pool dependency); each worker
//!   owns its accumulators, carry vector and inversion scratch.
//!
//! [`FixedBaseTable::mul`] remains as the one-scalar entry point (Jacobian
//! mixed adds; batching has nothing to amortize over a single scalar).

use crate::curve::{Affine, Projective, SwCurveConfig};
use crate::msm::add_affine;
use alloc::vec;
use alloc::vec::Vec;
use zkrownn_ff::{BigInt256, Field, Fr, PrimeField};

/// Precomputed window table for one base point.
///
/// `rows[i · half + (j − 1)] = j · 2^(i·window) · base` for `j` in
/// `1..=half` where `half = 2^(window−1)` — the positive signed digits;
/// digit 0 contributes nothing and negative digits use the negated entry.
pub struct FixedBaseTable<C: SwCurveConfig> {
    window: usize,
    /// `2^(window − 1)` — entries per window row.
    half: usize,
    /// Flat row-major table, `windows · half` affine points.
    rows: Vec<Affine<C>>,
}

impl<C: SwCurveConfig> FixedBaseTable<C> {
    /// Suggested window size when `n` multiplications will be performed.
    ///
    /// Balances the per-scalar window walk (`⌈254/w⌉ + 1` batch-affine adds
    /// each) against building `(⌈254/w⌉ + 1) · 2^(w−1)` table entries: the
    /// minimum sits near `log₂ n − 3` and is flat for ±1 around it.
    pub fn suggested_window(n: usize) -> usize {
        if n < 32 {
            3
        } else {
            ((usize::BITS - n.leading_zeros()) as usize - 3).clamp(4, 16)
        }
    }

    /// Builds a table for `base` with the given window width.
    ///
    /// All `windows · 2^(w−1)` entries are accumulated in Jacobian form and
    /// normalized with **one** shared batch inversion at the end.
    pub fn new(base: Projective<C>, window: usize) -> Self {
        assert!((2..=20).contains(&window), "unreasonable window size");
        // one extra window absorbs the signed-digit carry out of bit 254
        let windows = 254usize.div_ceil(window) + 1;
        let half = 1usize << (window - 1);
        let mut jac = Vec::with_capacity(windows * half);
        let mut block_base = base; // 2^(i·window) · base
        for _ in 0..windows {
            // row: 1·bb, 2·bb, …, half·bb
            let mut acc = block_base;
            for _ in 0..half {
                jac.push(acc);
                acc += block_base;
            }
            // next block base is 2^w·bb = 2 · (half·bb) = 2 · last entry
            block_base = jac.last().expect("half ≥ 1").double();
        }
        Self {
            window,
            half,
            rows: Projective::batch_into_affine(&jac),
        }
    }

    /// The window width this table was built for.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Table entry for signed-digit magnitude `mag ∈ 1..=half` of window `w`.
    #[inline]
    fn entry(&self, w: usize, mag: usize) -> &Affine<C> {
        &self.rows[w * self.half + (mag - 1)]
    }

    /// Number of signed-digit windows (table rows).
    #[inline]
    fn windows(&self) -> usize {
        self.rows.len() / self.half
    }

    /// Recodes the next window digit: returns `(digit, carry_out)` with
    /// `digit ∈ [−2^(w−1), 2^(w−1) − 1]` and
    /// `raw + carry_in = digit + carry_out · 2^w`.
    #[inline]
    fn signed_digit(&self, repr: &BigInt256, w: usize, carry: u64) -> (i64, u64) {
        let raw = repr.bits64(w * self.window, self.window) + carry;
        if raw >= self.half as u64 {
            (raw as i64 - (1i64 << self.window), 1)
        } else {
            (raw as i64, 0)
        }
    }

    /// Multiplies the base by `scalar` (single-scalar path: Jacobian mixed
    /// additions, no batching to amortize).
    pub fn mul(&self, scalar: Fr) -> Projective<C> {
        let repr = scalar.into_bigint();
        let mut acc = Projective::identity();
        let mut carry = 0u64;
        for w in 0..self.windows() {
            let (digit, c) = self.signed_digit(&repr, w, carry);
            carry = c;
            if digit != 0 {
                let p = self.entry(w, digit.unsigned_abs() as usize);
                if digit < 0 {
                    acc.add_assign_mixed(&p.neg());
                } else {
                    acc.add_assign_mixed(p);
                }
            }
        }
        debug_assert_eq!(carry, 0, "carry out of a 254-bit scalar");
        acc
    }

    /// Multiplies the base by each scalar, returning affine points directly
    /// (batch-affine accumulation, split across the machine's cores; serial
    /// without the `std` feature).
    pub fn mul_many(&self, scalars: &[Fr]) -> Vec<Affine<C>> {
        #[cfg(feature = "std")]
        let threads = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        #[cfg(not(feature = "std"))]
        let threads = 1;
        self.mul_many_with_threads(scalars, threads)
    }

    /// [`Self::mul_many`] with an explicit worker cap (exposed for the
    /// ablation benches and for callers that already parallelize above
    /// this kernel). Without the `std` feature the cap is ignored and the
    /// kernel runs serially.
    pub fn mul_many_with_threads(&self, scalars: &[Fr], threads: usize) -> Vec<Affine<C>> {
        let mut out = vec![Affine::identity(); scalars.len()];
        let threads = threads.max(1).min(scalars.len().max(1));
        if threads == 1 || cfg!(not(feature = "std")) {
            self.accumulate(scalars, &mut out);
            return out;
        }
        #[cfg(feature = "std")]
        {
            let chunk = scalars.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (s_chunk, o_chunk) in scalars.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    scope.spawn(move || self.accumulate(s_chunk, o_chunk));
                }
            });
        }
        out
    }

    /// The serial batch-affine kernel: walks all windows in lockstep over
    /// `scalars`, one shared Montgomery batch inversion per window round,
    /// accumulating into the (affine) `out` slots.
    fn accumulate(&self, scalars: &[Fr], out: &mut [Affine<C>]) {
        debug_assert_eq!(scalars.len(), out.len());
        let n = scalars.len();
        let reprs: Vec<BigInt256> = scalars.iter().map(|s| s.into_bigint()).collect();
        let mut carries = vec![0u64; n];
        let mut digits = vec![0i64; n];
        let mut denoms: Vec<C::BaseField> = Vec::with_capacity(n);
        let mut scratch: Vec<C::BaseField> = Vec::with_capacity(n);
        for w in 0..self.windows() {
            // Phase A: recode this window's digits and collect one
            // denominator per active scalar, in scalar order.
            denoms.clear();
            for i in 0..n {
                let (digit, c) = self.signed_digit(&reprs[i], w, carries[i]);
                carries[i] = c;
                digits[i] = digit;
                if digit == 0 {
                    continue;
                }
                let q = self.entry(w, digit.unsigned_abs() as usize);
                let p = &out[i];
                denoms.push(if p.infinity || q.infinity {
                    C::BaseField::one()
                } else if p.x == q.x {
                    // doubling needs 1/(2y); the q = −p cancellation case
                    // pushes 2y too, but its inverse is never read
                    p.y.double()
                } else {
                    q.x - p.x
                });
            }
            if denoms.is_empty() {
                continue;
            }
            C::BaseField::batch_inverse_with_scratch(&mut denoms, &mut scratch);

            // Phase B: apply the affine additions with the shared inverses.
            let mut next = 0usize;
            for i in 0..n {
                let d = digits[i];
                if d == 0 {
                    continue;
                }
                let mut q = *self.entry(w, d.unsigned_abs() as usize);
                if d < 0 {
                    q = q.neg();
                }
                out[i] = add_affine(&out[i], &q, denoms[next]);
                next += 1;
            }
        }
        debug_assert!(carries.iter().all(|&c| c == 0), "carry out of 254 bits");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::{G1Projective, G2Projective};
    use rand::SeedableRng;
    use zkrownn_ff::Field;

    #[test]
    fn table_mul_matches_double_and_add_g1() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        let g = G1Projective::generator();
        for window in [2usize, 3, 7, 13] {
            let table = FixedBaseTable::new(g, window);
            for _ in 0..5 {
                let s = Fr::random(&mut rng);
                assert_eq!(table.mul(s), g.mul_scalar(s), "window {window}");
            }
        }
    }

    #[test]
    fn table_mul_matches_double_and_add_g2() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(72);
        let g = G2Projective::generator();
        let table = FixedBaseTable::new(g, 5);
        let s = Fr::random(&mut rng);
        assert_eq!(table.mul(s), g.mul_scalar(s));
    }

    #[test]
    fn mul_many_matches_individual() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        let g = G1Projective::generator();
        let table = FixedBaseTable::new(g, 6);
        let scalars: Vec<Fr> = (0..23).map(|_| Fr::random(&mut rng)).collect();
        let many = table.mul_many(&scalars);
        for (s, p) in scalars.iter().zip(many.iter()) {
            assert_eq!(*p, g.mul_scalar(*s).into_affine());
        }
    }

    #[test]
    fn mul_many_thread_counts_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(74);
        let g = G1Projective::generator();
        let table = FixedBaseTable::new(g, 5);
        let scalars: Vec<Fr> = (0..37).map(|_| Fr::random(&mut rng)).collect();
        let serial = table.mul_many_with_threads(&scalars, 1);
        for threads in [2usize, 3, 8, 64] {
            assert_eq!(
                serial,
                table.mul_many_with_threads(&scalars, threads),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn mul_many_handles_adversarial_scalars() {
        // zero (never touches the accumulator), one, r − 1 (every signed
        // digit path), equal scalars (forces the doubling branch of the
        // batch-affine add when accumulators collide with table entries)
        let g = G1Projective::generator();
        let table = FixedBaseTable::new(g, 4);
        let scalars = vec![
            Fr::zero(),
            Fr::one(),
            -Fr::one(),
            Fr::from_u64(2),
            Fr::from_u64(2),
            Fr::from_u64((1 << 15) - 1),
        ];
        let many = table.mul_many(&scalars);
        for (s, p) in scalars.iter().zip(many.iter()) {
            assert_eq!(*p, g.mul_scalar(*s).into_affine());
        }
        assert!(many[0].is_identity());
    }

    #[test]
    fn zero_and_one_scalars() {
        let g = G1Projective::generator();
        let table = FixedBaseTable::new(g, 4);
        assert!(table.mul(Fr::zero()).is_identity());
        assert_eq!(table.mul(Fr::one()), g);
    }

    #[test]
    fn suggested_window_grows_with_n() {
        assert_eq!(FixedBaseTable::<crate::G1Config>::suggested_window(8), 3);
        let w1k = FixedBaseTable::<crate::G1Config>::suggested_window(1 << 10);
        let w128k = FixedBaseTable::<crate::G1Config>::suggested_window(1 << 17);
        assert!(w1k < w128k);
        assert!(w128k <= 16);
    }
}
