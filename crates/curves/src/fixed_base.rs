//! Fixed-base windowed scalar multiplication.
//!
//! The Groth16 setup multiplies a *single* base (the group generator, or
//! `γ⁻¹`/`δ⁻¹`-scaled variants) by millions of distinct scalars. A windowed
//! table reduces each multiplication to `⌈254/w⌉` mixed additions.

use crate::curve::{Affine, Projective, SwCurveConfig};
use zkrownn_ff::{Fr, PrimeField};

/// Precomputed window table for one base point.
pub struct FixedBaseTable<C: SwCurveConfig> {
    window: usize,
    /// `table[i][j] = j · 2^(i·window) · base` for `j` in `0..2^window`.
    table: Vec<Vec<Affine<C>>>,
}

impl<C: SwCurveConfig> FixedBaseTable<C> {
    /// Suggested window size when `n` multiplications will be performed.
    pub fn suggested_window(n: usize) -> usize {
        if n < 32 {
            3
        } else {
            ((usize::BITS - n.leading_zeros()) as usize).clamp(3, 18)
        }
    }

    /// Builds a table for `base` with the given window width.
    pub fn new(base: Projective<C>, window: usize) -> Self {
        assert!((1..=24).contains(&window), "unreasonable window size");
        let outer = 254usize.div_ceil(window);
        let mut table = Vec::with_capacity(outer);
        let mut block_base = base; // 2^(i·window) · base
        for _ in 0..outer {
            // row: 0, b, 2b, ..., (2^w - 1) b
            let mut row = Vec::with_capacity(1 << window);
            let mut acc = Projective::identity();
            for _ in 0..(1 << window) {
                row.push(acc);
                acc += block_base;
            }
            table.push(Projective::batch_into_affine(&row));
            block_base = acc; // 2^w · block_base
        }
        Self { window, table }
    }

    /// Multiplies the base by `scalar`.
    pub fn mul(&self, scalar: Fr) -> Projective<C> {
        let repr = scalar.into_bigint();
        let mut acc = Projective::identity();
        for (i, row) in self.table.iter().enumerate() {
            let digit = extract(&repr.0, i * self.window, self.window);
            if digit != 0 {
                acc.add_assign_mixed(&row[digit as usize]);
            }
        }
        acc
    }

    /// Multiplies the base by each scalar, in parallel, returning affine
    /// points (batch-normalized).
    pub fn mul_many(&self, scalars: &[Fr]) -> Vec<Affine<C>> {
        let threads = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        let chunk = scalars.len().div_ceil(threads).max(1);
        let mut out: Vec<Affine<C>> = vec![Affine::identity(); scalars.len()];
        std::thread::scope(|scope| {
            for (s_chunk, o_chunk) in scalars.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    let proj: Vec<Projective<C>> = s_chunk.iter().map(|s| self.mul(*s)).collect();
                    o_chunk.copy_from_slice(&Projective::batch_into_affine(&proj));
                });
            }
        });
        out
    }
}

fn extract(limbs: &[u64; 4], shift: usize, width: usize) -> u64 {
    if shift >= 256 {
        return 0;
    }
    let limb = shift / 64;
    let bit = shift % 64;
    let mut out = limbs[limb] >> bit;
    if bit + width > 64 && limb + 1 < 4 {
        out |= limbs[limb + 1] << (64 - bit);
    }
    out & ((1u64 << width) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::{G1Projective, G2Projective};
    use rand::SeedableRng;
    use zkrownn_ff::Field;

    #[test]
    fn table_mul_matches_double_and_add_g1() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        let g = G1Projective::generator();
        for window in [1usize, 3, 7, 13] {
            let table = FixedBaseTable::new(g, window);
            for _ in 0..5 {
                let s = Fr::random(&mut rng);
                assert_eq!(table.mul(s), g.mul_scalar(s), "window {window}");
            }
        }
    }

    #[test]
    fn table_mul_matches_double_and_add_g2() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(72);
        let g = G2Projective::generator();
        let table = FixedBaseTable::new(g, 5);
        let s = Fr::random(&mut rng);
        assert_eq!(table.mul(s), g.mul_scalar(s));
    }

    #[test]
    fn mul_many_matches_individual() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        let g = G1Projective::generator();
        let table = FixedBaseTable::new(g, 6);
        let scalars: Vec<Fr> = (0..23).map(|_| Fr::random(&mut rng)).collect();
        let many = table.mul_many(&scalars);
        for (s, p) in scalars.iter().zip(many.iter()) {
            assert_eq!(*p, g.mul_scalar(*s).into_affine());
        }
    }

    #[test]
    fn zero_and_one_scalars() {
        let g = G1Projective::generator();
        let table = FixedBaseTable::new(g, 4);
        assert!(table.mul(Fr::zero()).is_identity());
        assert_eq!(table.mul(Fr::one()), g);
    }
}
