//! A byte-denominated memory budget for chunked curve computations.
//!
//! The streaming keygen and prover paths (`zkrownn-groth16`,
//! `zkrownn-store`) process point families in bounded chunks instead of
//! materializing whole vectors. [`MemoryBudget`] is the single knob that
//! sizes those chunks: callers state how many bytes of *point data* they
//! are willing to hold at once, and every chunked kernel derives its chunk
//! length from the element size it is working with.
//!
//! The budget only bounds the dominant buffers (decoded point chunks and
//! their wire bytes) — fixed-base tables, scalar vectors (32 B/element)
//! and MSM scratch are small by comparison and accounted for by the
//! caller's choice of budget, not micro-managed here.

/// How many bytes of point data a chunked kernel may hold at once.
///
/// Chunk lengths are clamped to [`MemoryBudget::MIN_CHUNK`] elements so a
/// pathologically small budget still makes progress (batch-affine kernels
/// need a few hundred elements per batch to amortize their shared
/// inversion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    bytes: usize,
}

impl MemoryBudget {
    /// Smallest chunk length any budget resolves to.
    pub const MIN_CHUNK: usize = 256;

    /// A budget of `mb` mebibytes.
    pub fn from_mb(mb: usize) -> Self {
        Self {
            bytes: mb.saturating_mul(1 << 20),
        }
    }

    /// A budget of exactly `bytes` bytes.
    pub fn from_bytes(bytes: usize) -> Self {
        Self { bytes }
    }

    /// The budget in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// How many elements of `elem_bytes` bytes each fit in the budget,
    /// clamped to at least [`Self::MIN_CHUNK`].
    ///
    /// Chunking never changes results — fixed-base multiplication is
    /// per-scalar and MSM partial sums add up group-exactly — so the
    /// clamp is purely a performance floor.
    pub fn chunk_len(&self, elem_bytes: usize) -> usize {
        (self.bytes / elem_bytes.max(1)).max(Self::MIN_CHUNK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_len_scales_with_budget_and_element_size() {
        let b = MemoryBudget::from_mb(1);
        assert_eq!(b.bytes(), 1 << 20);
        assert_eq!(b.chunk_len(64), (1 << 20) / 64);
        assert_eq!(b.chunk_len(128), (1 << 20) / 128);
        // tiny budgets are floored so kernels still batch usefully
        assert_eq!(MemoryBudget::from_bytes(64).chunk_len(128), 256);
        // a zero element size must not divide by zero
        assert_eq!(MemoryBudget::from_bytes(1024).chunk_len(0), 1024);
    }
}
