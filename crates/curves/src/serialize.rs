//! Point serialization.
//!
//! Compressed encoding stores only the x-coordinate plus two flag bits in
//! the most significant byte (possible because the BN254 modulus is 254
//! bits): bit 7 = infinity, bit 6 = "y is lexicographically largest".
//! G1 compresses to 32 bytes and G2 to 64 bytes, so a Groth16 proof
//! `(A: G1, B: G2, C: G1)` is exactly 128 bytes — matching the ~127 B proofs
//! reported in the paper.

use crate::curve::{Affine, SwCurveConfig};
use crate::field_codec::FieldCodec;
use zkrownn_ff::{Field, SquareRootField};

const FLAG_INFINITY: u8 = 1 << 7;
const FLAG_Y_LARGEST: u8 = 1 << 6;

/// Number of bytes in the compressed encoding of a point on `C`.
pub fn compressed_size<C: SwCurveConfig>() -> usize {
    C::BaseField::BYTES
}

/// Number of bytes in the uncompressed encoding of a point on `C`.
pub fn uncompressed_size<C: SwCurveConfig>() -> usize {
    2 * C::BaseField::BYTES
}

/// Serializes a point in compressed form (x + flags).
pub fn write_compressed<C: SwCurveConfig>(p: &Affine<C>, out: &mut Vec<u8>) {
    let start = out.len();
    if p.infinity {
        out.resize(start + C::BaseField::BYTES, 0);
        let last = out.len() - 1;
        out[last] = FLAG_INFINITY;
        return;
    }
    p.x.write_bytes(out);
    let last = out.len() - 1;
    debug_assert_eq!(out[last] & 0xc0, 0, "top flag bits must be free");
    if p.y.is_lexicographically_largest() {
        out[last] |= FLAG_Y_LARGEST;
    }
}

/// Deserializes a compressed point, checking the curve equation and (when
/// the curve has a cofactor) prime-subgroup membership.
pub fn read_compressed<C: SwCurveConfig>(bytes: &[u8]) -> Option<Affine<C>> {
    if bytes.len() != C::BaseField::BYTES {
        return None;
    }
    let mut buf = bytes.to_vec();
    let last = buf.len() - 1;
    let flags = buf[last] & 0xc0;
    buf[last] &= 0x3f;
    if flags & FLAG_INFINITY != 0 {
        if buf.iter().any(|&b| b != 0) || flags & FLAG_Y_LARGEST != 0 {
            return None; // non-canonical infinity
        }
        return Some(Affine::identity());
    }
    let x = C::BaseField::read_bytes(&buf)?;
    let y2 = x.square() * x + C::coeff_b();
    let mut y = y2.sqrt()?;
    let want_largest = flags & FLAG_Y_LARGEST != 0;
    if y.is_lexicographically_largest() != want_largest {
        y = -y;
    }
    let p = Affine::new_unchecked(x, y);
    debug_assert!(p.is_on_curve());
    if !p.is_in_correct_subgroup() {
        return None;
    }
    Some(p)
}

/// Serializes a point in uncompressed form (x ‖ y + flags).
pub fn write_uncompressed<C: SwCurveConfig>(p: &Affine<C>, out: &mut Vec<u8>) {
    if p.infinity {
        let start = out.len();
        out.resize(start + 2 * C::BaseField::BYTES, 0);
        let last = out.len() - 1;
        out[last] = FLAG_INFINITY;
        return;
    }
    p.x.write_bytes(out);
    p.y.write_bytes(out);
}

/// Deserializes an uncompressed point with on-curve/subgroup validation.
pub fn read_uncompressed<C: SwCurveConfig>(bytes: &[u8]) -> Option<Affine<C>> {
    let n = C::BaseField::BYTES;
    if bytes.len() != 2 * n {
        return None;
    }
    let mut buf = bytes.to_vec();
    let last = buf.len() - 1;
    let flags = buf[last] & 0xc0;
    buf[last] &= 0x3f;
    if flags & FLAG_INFINITY != 0 {
        if buf.iter().any(|&b| b != 0) {
            return None;
        }
        return Some(Affine::identity());
    }
    let x = C::BaseField::read_bytes(&buf[..n])?;
    let y = C::BaseField::read_bytes(&buf[n..])?;
    let p = Affine::new_unchecked(x, y);
    if !p.is_on_curve() || !p.is_in_correct_subgroup() {
        return None;
    }
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::{G1Affine, G1Projective, G2Affine, G2Projective};
    use rand::SeedableRng;
    use zkrownn_ff::Fr;

    #[test]
    fn g1_compressed_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(81);
        for _ in 0..10 {
            let p = G1Projective::generator()
                .mul_scalar(Fr::random(&mut rng))
                .into_affine();
            let mut buf = Vec::new();
            write_compressed(&p, &mut buf);
            assert_eq!(buf.len(), 32);
            assert_eq!(read_compressed::<crate::bn254::G1Config>(&buf), Some(p));
        }
    }

    #[test]
    fn g2_compressed_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(82);
        for _ in 0..5 {
            let p = G2Projective::generator()
                .mul_scalar(Fr::random(&mut rng))
                .into_affine();
            let mut buf = Vec::new();
            write_compressed(&p, &mut buf);
            assert_eq!(buf.len(), 64);
            assert_eq!(read_compressed::<crate::bn254::G2Config>(&buf), Some(p));
        }
    }

    #[test]
    fn infinity_roundtrip() {
        let mut buf = Vec::new();
        write_compressed(&G1Affine::identity(), &mut buf);
        assert_eq!(
            read_compressed::<crate::bn254::G1Config>(&buf),
            Some(G1Affine::identity())
        );
        let mut buf2 = Vec::new();
        write_uncompressed(&G2Affine::identity(), &mut buf2);
        assert_eq!(
            read_uncompressed::<crate::bn254::G2Config>(&buf2),
            Some(G2Affine::identity())
        );
    }

    #[test]
    fn uncompressed_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(83);
        let p = G2Projective::generator()
            .mul_scalar(Fr::random(&mut rng))
            .into_affine();
        let mut buf = Vec::new();
        write_uncompressed(&p, &mut buf);
        assert_eq!(buf.len(), 128);
        assert_eq!(read_uncompressed::<crate::bn254::G2Config>(&buf), Some(p));
    }

    #[test]
    fn off_curve_points_rejected() {
        // x with no valid y (or wrong curve) must fail cleanly
        let mut buf = vec![0u8; 32];
        buf[0] = 5; // x = 5: 125 + 3 = 128, not a QR? either way, exercise the path
        let r = read_compressed::<crate::bn254::G1Config>(&buf);
        if let Some(p) = r {
            assert!(p.is_on_curve());
        }
        // tampered uncompressed point must be rejected
        let g = G1Affine::new_unchecked(
            zkrownn_ff::Fq::from_u64(1),
            zkrownn_ff::Fq::from_u64(3), // (1, 3) is not on y² = x³ + 3
        );
        let mut buf = Vec::new();
        write_uncompressed(&g, &mut buf);
        assert_eq!(read_uncompressed::<crate::bn254::G1Config>(&buf), None);
    }

    #[test]
    fn g2_non_subgroup_point_rejected() {
        // Find a point on the twist but outside the r-order subgroup: take a
        // random x until y exists, then check the subgroup test fires.
        use crate::curve::SwCurveConfig;
        use zkrownn_ff::{Field, Fq2, SquareRootField};
        let mut rng = rand::rngs::StdRng::seed_from_u64(84);
        let mut found = false;
        for _ in 0..50 {
            let x = Fq2::random(&mut rng);
            let y2 = x.square() * x + crate::bn254::G2Config::coeff_b();
            if let Some(y) = y2.sqrt() {
                let p = G2Affine::new_unchecked(x, y);
                assert!(p.is_on_curve());
                if !p.is_in_correct_subgroup() {
                    let mut buf = Vec::new();
                    write_uncompressed(&p, &mut buf);
                    assert_eq!(read_uncompressed::<crate::bn254::G2Config>(&buf), None);
                    found = true;
                    break;
                }
            }
        }
        assert!(
            found,
            "random twist points should overwhelmingly be outside the subgroup"
        );
    }
}
