//! Point serialization.
//!
//! Compressed encoding stores only the x-coordinate plus two flag bits in
//! the most significant byte (possible because the BN254 modulus is 254
//! bits): bit 7 = infinity, bit 6 = "y is lexicographically largest".
//! G1 compresses to 32 bytes and G2 to 64 bytes, so a Groth16 proof
//! `(A: G1, B: G2, C: G1)` is exactly 128 bytes — matching the ~127 B proofs
//! reported in the paper.

use crate::curve::{Affine, SwCurveConfig};
use crate::field_codec::FieldCodec;
use alloc::vec::Vec;
use zkrownn_ff::{Field, SquareRootField};

const FLAG_INFINITY: u8 = 1 << 7;
const FLAG_Y_LARGEST: u8 = 1 << 6;

/// Why a byte string failed to decode as a curve point.
///
/// Every rejection names the exact validation that fired, so the layers
/// above (key/proof/artifact deserializers) can report *why* an artifact is
/// malformed instead of a bare `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointDecodeError {
    /// The input length does not match the encoding size.
    WrongLength {
        /// Bytes the encoding requires.
        expected: usize,
        /// Bytes supplied.
        got: usize,
    },
    /// A coordinate is not a canonical field element (≥ the modulus).
    NonCanonicalField,
    /// The infinity flag is set but the remaining bits are not all zero.
    NonCanonicalInfinity,
    /// The coordinates do not satisfy the curve equation (for compressed
    /// points: `x³ + b` has no square root).
    NotOnCurve,
    /// The point is on the curve but outside the prime-order subgroup.
    WrongSubgroup,
}

impl core::fmt::Display for PointDecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::WrongLength { expected, got } => {
                write!(f, "point encoding is {got} bytes, expected {expected}")
            }
            Self::NonCanonicalField => write!(f, "coordinate is not a canonical field element"),
            Self::NonCanonicalInfinity => write!(f, "non-canonical encoding of infinity"),
            Self::NotOnCurve => write!(f, "point is not on the curve"),
            Self::WrongSubgroup => write!(f, "point is outside the prime-order subgroup"),
        }
    }
}

#[cfg(feature = "std")]
impl std::error::Error for PointDecodeError {}

/// Number of bytes in the compressed encoding of a point on `C`.
pub fn compressed_size<C: SwCurveConfig>() -> usize {
    C::BaseField::BYTES
}

/// Number of bytes in the uncompressed encoding of a point on `C`.
pub fn uncompressed_size<C: SwCurveConfig>() -> usize {
    2 * C::BaseField::BYTES
}

/// Serializes a point in compressed form (x + flags).
pub fn write_compressed<C: SwCurveConfig>(p: &Affine<C>, out: &mut Vec<u8>) {
    let start = out.len();
    if p.infinity {
        out.resize(start + C::BaseField::BYTES, 0);
        let last = out.len() - 1;
        out[last] = FLAG_INFINITY;
        return;
    }
    p.x.write_bytes(out);
    let last = out.len() - 1;
    debug_assert_eq!(out[last] & 0xc0, 0, "top flag bits must be free");
    if p.y.is_lexicographically_largest() {
        out[last] |= FLAG_Y_LARGEST;
    }
}

/// Deserializes a compressed point, checking the curve equation and (when
/// the curve has a cofactor) prime-subgroup membership.
pub fn read_compressed<C: SwCurveConfig>(bytes: &[u8]) -> Result<Affine<C>, PointDecodeError> {
    if bytes.len() != C::BaseField::BYTES {
        return Err(PointDecodeError::WrongLength {
            expected: C::BaseField::BYTES,
            got: bytes.len(),
        });
    }
    let mut buf = bytes.to_vec();
    let last = buf.len() - 1;
    let flags = buf[last] & 0xc0;
    buf[last] &= 0x3f;
    if flags & FLAG_INFINITY != 0 {
        if buf.iter().any(|&b| b != 0) || flags & FLAG_Y_LARGEST != 0 {
            return Err(PointDecodeError::NonCanonicalInfinity);
        }
        return Ok(Affine::identity());
    }
    let x = C::BaseField::read_bytes(&buf).ok_or(PointDecodeError::NonCanonicalField)?;
    let y2 = x.square() * x + C::coeff_b();
    let mut y = y2.sqrt().ok_or(PointDecodeError::NotOnCurve)?;
    let want_largest = flags & FLAG_Y_LARGEST != 0;
    if y.is_lexicographically_largest() != want_largest {
        y = -y;
    }
    let p = Affine::new_unchecked(x, y);
    debug_assert!(p.is_on_curve());
    if !p.is_in_correct_subgroup() {
        return Err(PointDecodeError::WrongSubgroup);
    }
    Ok(p)
}

/// Serializes a point in uncompressed form (x ‖ y + flags).
pub fn write_uncompressed<C: SwCurveConfig>(p: &Affine<C>, out: &mut Vec<u8>) {
    if p.infinity {
        let start = out.len();
        out.resize(start + 2 * C::BaseField::BYTES, 0);
        let last = out.len() - 1;
        out[last] = FLAG_INFINITY;
        return;
    }
    p.x.write_bytes(out);
    p.y.write_bytes(out);
}

/// Deserializes an uncompressed point with on-curve/subgroup validation.
pub fn read_uncompressed<C: SwCurveConfig>(bytes: &[u8]) -> Result<Affine<C>, PointDecodeError> {
    let n = C::BaseField::BYTES;
    if bytes.len() != 2 * n {
        return Err(PointDecodeError::WrongLength {
            expected: 2 * n,
            got: bytes.len(),
        });
    }
    let mut buf = bytes.to_vec();
    let last = buf.len() - 1;
    let flags = buf[last] & 0xc0;
    buf[last] &= 0x3f;
    if flags & FLAG_INFINITY != 0 {
        if buf.iter().any(|&b| b != 0) {
            return Err(PointDecodeError::NonCanonicalInfinity);
        }
        return Ok(Affine::identity());
    }
    let x = C::BaseField::read_bytes(&buf[..n]).ok_or(PointDecodeError::NonCanonicalField)?;
    let y = C::BaseField::read_bytes(&buf[n..]).ok_or(PointDecodeError::NonCanonicalField)?;
    let p = Affine::new_unchecked(x, y);
    if !p.is_on_curve() {
        return Err(PointDecodeError::NotOnCurve);
    }
    if !p.is_in_correct_subgroup() {
        return Err(PointDecodeError::WrongSubgroup);
    }
    Ok(p)
}

/// Deserializes an uncompressed point **without** the on-curve and
/// subgroup checks.
///
/// This is the hot-path decode for integrity-protected streams: the
/// store-backed prover reads millions of key points whose bytes are
/// covered by a per-segment checksum verified alongside the read, so
/// re-proving subgroup membership per point (a full scalar mul on G2)
/// would dominate the proving time for zero safety gain. Canonical-field
/// and canonical-infinity validation still run — a flipped bit that
/// survives into the field range yields a *wrong but well-formed* point,
/// which the caller's checksum check is responsible for catching.
///
/// Never feed this untrusted bytes without an accompanying integrity
/// check: an adversarial off-curve point silently corrupts every sum it
/// touches.
pub fn read_uncompressed_unvalidated<C: SwCurveConfig>(
    bytes: &[u8],
) -> Result<Affine<C>, PointDecodeError> {
    let n = C::BaseField::BYTES;
    if bytes.len() != 2 * n {
        return Err(PointDecodeError::WrongLength {
            expected: 2 * n,
            got: bytes.len(),
        });
    }
    let last = 2 * n - 1;
    if bytes[last] & FLAG_INFINITY != 0 {
        if bytes[..last].iter().any(|&b| b != 0) || bytes[last] != FLAG_INFINITY {
            return Err(PointDecodeError::NonCanonicalInfinity);
        }
        return Ok(Affine::identity());
    }
    let x = C::BaseField::read_bytes(&bytes[..n]).ok_or(PointDecodeError::NonCanonicalField)?;
    let y = C::BaseField::read_bytes(&bytes[n..]).ok_or(PointDecodeError::NonCanonicalField)?;
    Ok(Affine::new_unchecked(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::{G1Affine, G1Projective, G2Affine, G2Projective};
    use rand::SeedableRng;
    use zkrownn_ff::Fr;

    #[test]
    fn g1_compressed_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(81);
        for _ in 0..10 {
            let p = G1Projective::generator()
                .mul_scalar(Fr::random(&mut rng))
                .into_affine();
            let mut buf = Vec::new();
            write_compressed(&p, &mut buf);
            assert_eq!(buf.len(), 32);
            assert_eq!(read_compressed::<crate::bn254::G1Config>(&buf), Ok(p));
        }
    }

    #[test]
    fn g2_compressed_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(82);
        for _ in 0..5 {
            let p = G2Projective::generator()
                .mul_scalar(Fr::random(&mut rng))
                .into_affine();
            let mut buf = Vec::new();
            write_compressed(&p, &mut buf);
            assert_eq!(buf.len(), 64);
            assert_eq!(read_compressed::<crate::bn254::G2Config>(&buf), Ok(p));
        }
    }

    #[test]
    fn infinity_roundtrip() {
        let mut buf = Vec::new();
        write_compressed(&G1Affine::identity(), &mut buf);
        assert_eq!(
            read_compressed::<crate::bn254::G1Config>(&buf),
            Ok(G1Affine::identity())
        );
        let mut buf2 = Vec::new();
        write_uncompressed(&G2Affine::identity(), &mut buf2);
        assert_eq!(
            read_uncompressed::<crate::bn254::G2Config>(&buf2),
            Ok(G2Affine::identity())
        );
        // a non-canonical infinity encoding is named as such
        buf[0] = 1;
        assert_eq!(
            read_compressed::<crate::bn254::G1Config>(&buf),
            Err(PointDecodeError::NonCanonicalInfinity)
        );
    }

    #[test]
    fn uncompressed_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(83);
        let p = G2Projective::generator()
            .mul_scalar(Fr::random(&mut rng))
            .into_affine();
        let mut buf = Vec::new();
        write_uncompressed(&p, &mut buf);
        assert_eq!(buf.len(), 128);
        assert_eq!(read_uncompressed::<crate::bn254::G2Config>(&buf), Ok(p));
        assert_eq!(
            read_uncompressed::<crate::bn254::G2Config>(&buf[..127]),
            Err(PointDecodeError::WrongLength {
                expected: 128,
                got: 127
            })
        );
    }

    #[test]
    fn unvalidated_read_roundtrips_and_keeps_canonical_checks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(85);
        let p = G2Projective::generator()
            .mul_scalar(Fr::random(&mut rng))
            .into_affine();
        let mut buf = Vec::new();
        write_uncompressed(&p, &mut buf);
        assert_eq!(
            read_uncompressed_unvalidated::<crate::bn254::G2Config>(&buf),
            Ok(p)
        );
        let mut inf = Vec::new();
        write_uncompressed(&G1Affine::identity(), &mut inf);
        assert_eq!(
            read_uncompressed_unvalidated::<crate::bn254::G1Config>(&inf),
            Ok(G1Affine::identity())
        );
        inf[0] = 1;
        assert_eq!(
            read_uncompressed_unvalidated::<crate::bn254::G1Config>(&inf),
            Err(PointDecodeError::NonCanonicalInfinity)
        );
        // a coordinate ≥ the modulus is still rejected (flag bits clear:
        // x = 2^253-ish > q with the top two bits of the last byte zero)
        let mut oversized = vec![0xffu8; 64];
        oversized[31] = 0x3f;
        oversized[63] = 0x3f;
        assert_eq!(
            read_uncompressed_unvalidated::<crate::bn254::G1Config>(&oversized),
            Err(PointDecodeError::NonCanonicalField)
        );
        assert_eq!(
            read_uncompressed_unvalidated::<crate::bn254::G1Config>(&buf[..63]),
            Err(PointDecodeError::WrongLength {
                expected: 64,
                got: 63
            })
        );
    }

    #[test]
    fn off_curve_points_rejected() {
        // x with no valid y (or wrong curve) must fail cleanly
        let mut buf = vec![0u8; 32];
        buf[0] = 5; // x = 5: 125 + 3 = 128, not a QR? either way, exercise the path
        let r = read_compressed::<crate::bn254::G1Config>(&buf);
        match r {
            Ok(p) => assert!(p.is_on_curve()),
            Err(e) => assert_eq!(e, PointDecodeError::NotOnCurve),
        }
        // tampered uncompressed point must be rejected
        let g = G1Affine::new_unchecked(
            zkrownn_ff::Fq::from_u64(1),
            zkrownn_ff::Fq::from_u64(3), // (1, 3) is not on y² = x³ + 3
        );
        let mut buf = Vec::new();
        write_uncompressed(&g, &mut buf);
        assert_eq!(
            read_uncompressed::<crate::bn254::G1Config>(&buf),
            Err(PointDecodeError::NotOnCurve)
        );
    }

    #[test]
    fn g2_non_subgroup_point_rejected() {
        // Find a point on the twist but outside the r-order subgroup: take a
        // random x until y exists, then check the subgroup test fires.
        use crate::curve::SwCurveConfig;
        use zkrownn_ff::{Field, Fq2, SquareRootField};
        let mut rng = rand::rngs::StdRng::seed_from_u64(84);
        let mut found = false;
        for _ in 0..50 {
            let x = Fq2::random(&mut rng);
            let y2 = x.square() * x + crate::bn254::G2Config::coeff_b();
            if let Some(y) = y2.sqrt() {
                let p = G2Affine::new_unchecked(x, y);
                assert!(p.is_on_curve());
                if !p.is_in_correct_subgroup() {
                    let mut buf = Vec::new();
                    write_uncompressed(&p, &mut buf);
                    assert_eq!(
                        read_uncompressed::<crate::bn254::G2Config>(&buf),
                        Err(PointDecodeError::WrongSubgroup)
                    );
                    found = true;
                    break;
                }
            }
        }
        assert!(
            found,
            "random twist points should overwhelmingly be outside the subgroup"
        );
    }
}
