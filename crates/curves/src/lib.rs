//! # zkrownn-curves — BN254 elliptic-curve groups
//!
//! Short-Weierstrass group arithmetic for BN254 G1 and G2 in Jacobian
//! coordinates, plus the two group-operation workhorses of a Groth16
//! implementation:
//!
//! * [`msm::msm`] — Pippenger multi-scalar multiplication (prover),
//! * [`fixed_base::FixedBaseTable`] — windowed fixed-base multiplication
//!   (trusted setup),
//!
//! and validated compressed/uncompressed [`serialize`] encodings (32 B G1
//! points, 64 B G2 points → 128 B Groth16 proofs, as in the paper).
//!
//! ```
//! use zkrownn_curves::{G1Projective, msm};
//! use zkrownn_ff::{Field, Fr};
//! let g = G1Projective::generator();
//! let bases = vec![g.into_affine(); 3];
//! let scalars = vec![Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3)];
//! assert_eq!(msm::msm(&bases, &scalars), g.mul_scalar(Fr::from_u64(6)));
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

extern crate alloc;

pub mod bn254;
pub mod budget;
pub mod curve;
pub mod field_codec;
pub mod fixed_base;
pub mod msm;
pub mod serialize;

pub use bn254::{G1Affine, G1Config, G1Projective, G2Affine, G2Config, G2Projective};
pub use budget::MemoryBudget;
pub use curve::{Affine, Projective, SwCurveConfig};
pub use field_codec::FieldCodec;
pub use fixed_base::FixedBaseTable;
pub use msm::MsmAccumulator;
pub use serialize::PointDecodeError;
