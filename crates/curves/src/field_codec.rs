//! Byte encoding and sign conventions for base-field elements, used by the
//! compressed/uncompressed point serialization.

use alloc::vec::Vec;
use zkrownn_ff::{Field, Fq, Fq2, PrimeField};

/// Canonical byte encoding plus a lexicographic "sign" for a field element.
pub trait FieldCodec: Sized {
    /// Encoded size in bytes.
    const BYTES: usize;

    /// Appends the little-endian canonical encoding to `out`.
    fn write_bytes(&self, out: &mut Vec<u8>);

    /// Parses an element from exactly `BYTES` bytes.
    fn read_bytes(bytes: &[u8]) -> Option<Self>;

    /// True if `self > -self` in the canonical ordering (used to encode the
    /// choice of square root in compressed points).
    fn is_lexicographically_largest(&self) -> bool;
}

impl FieldCodec for Fq {
    const BYTES: usize = 32;

    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_bytes(bytes: &[u8]) -> Option<Self> {
        let arr: &[u8; 32] = bytes.try_into().ok()?;
        Fq::from_le_bytes(arr)
    }

    fn is_lexicographically_largest(&self) -> bool {
        // compare canonical value against (p-1)/2
        let half = Fq::MODULUS.shr(1);
        self.into_bigint().const_cmp(&half) > 0
    }
}

impl FieldCodec for Fq2 {
    const BYTES: usize = 64;

    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.c0.write_bytes(out);
        self.c1.write_bytes(out);
    }

    fn read_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 64 {
            return None;
        }
        let c0 = Fq::read_bytes(&bytes[..32])?;
        let c1 = Fq::read_bytes(&bytes[32..])?;
        Some(Fq2::new(c0, c1))
    }

    fn is_lexicographically_largest(&self) -> bool {
        // order by (c1, c0): matches negation flipping both components
        if !self.c1.is_zero() {
            self.c1.is_lexicographically_largest()
        } else {
            self.c0.is_lexicographically_largest()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use zkrownn_ff::Field;

    #[test]
    fn fq_sign_is_antisymmetric() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let a = Fq::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_ne!(
                a.is_lexicographically_largest(),
                (-a).is_lexicographically_largest()
            );
        }
    }

    #[test]
    fn fq2_sign_is_antisymmetric() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let a = Fq2::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_ne!(
                a.is_lexicographically_largest(),
                (-a).is_lexicographically_largest()
            );
        }
    }

    #[test]
    fn roundtrip_bytes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let a = Fq2::random(&mut rng);
        let mut buf = Vec::new();
        a.write_bytes(&mut buf);
        assert_eq!(buf.len(), Fq2::BYTES);
        assert_eq!(Fq2::read_bytes(&buf), Some(a));
    }
}
