//! Generic short-Weierstrass curve groups `y² = x³ + b` in Jacobian
//! coordinates, shared by BN254 G1 (over `Fq`) and G2 (over `Fq2`).

use crate::field_codec::FieldCodec;
use alloc::vec::Vec;
use zkrownn_ff::{Field, Fr, PrimeField, SquareRootField};

/// Static configuration of a short-Weierstrass curve with `a = 0`.
pub trait SwCurveConfig: 'static + Copy + Clone + Send + Sync + Eq + core::fmt::Debug {
    /// Field the curve coordinates live in.
    type BaseField: Field + SquareRootField + FieldCodec;

    /// The constant `b` in `y² = x³ + b`.
    fn coeff_b() -> Self::BaseField;

    /// A generator of the prime-order subgroup.
    fn generator() -> Affine<Self>;

    /// Whether the prime-order subgroup is a proper subgroup (cofactor > 1).
    /// When true, deserialization performs a full subgroup check.
    const HAS_COFACTOR: bool;

    /// Short human-readable name used in error messages.
    const NAME: &'static str;
}

/// A point in affine coordinates (or the point at infinity).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct Affine<C: SwCurveConfig> {
    /// x-coordinate (meaningless when `infinity` is set).
    pub x: C::BaseField,
    /// y-coordinate (meaningless when `infinity` is set).
    pub y: C::BaseField,
    /// Marker for the identity element.
    pub infinity: bool,
}

/// A point in Jacobian projective coordinates: `(X : Y : Z)` represents the
/// affine point `(X/Z², Y/Z³)`; the identity has `Z = 0`.
#[derive(Copy, Clone, Debug)]
pub struct Projective<C: SwCurveConfig> {
    /// Jacobian X.
    pub x: C::BaseField,
    /// Jacobian Y.
    pub y: C::BaseField,
    /// Jacobian Z (zero at infinity).
    pub z: C::BaseField,
}

impl<C: SwCurveConfig> Affine<C> {
    /// The identity element.
    pub fn identity() -> Self {
        Self {
            x: C::BaseField::zero(),
            y: C::BaseField::one(),
            infinity: true,
        }
    }

    /// Creates a point from coordinates without checking the curve equation.
    pub fn new_unchecked(x: C::BaseField, y: C::BaseField) -> Self {
        Self {
            x,
            y,
            infinity: false,
        }
    }

    /// Returns true if the identity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Checks the curve equation `y² = x³ + b` (identity passes).
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        self.y.square() == self.x.square() * self.x + C::coeff_b()
    }

    /// Checks membership in the prime-order subgroup (multiplies by `r`).
    pub fn is_in_correct_subgroup(&self) -> bool {
        if self.infinity {
            return true;
        }
        if !C::HAS_COFACTOR {
            return true;
        }
        self.mul_bigint(&Fr::MODULUS.0).is_identity()
    }

    /// Converts to Jacobian coordinates.
    pub fn into_projective(self) -> Projective<C> {
        if self.infinity {
            Projective::identity()
        } else {
            Projective {
                x: self.x,
                y: self.y,
                z: C::BaseField::one(),
            }
        }
    }

    /// Scalar multiplication by a little-endian limb-encoded integer.
    pub fn mul_bigint(&self, scalar: &[u64]) -> Projective<C> {
        self.into_projective().mul_bigint(scalar)
    }

    /// Scalar multiplication by a field scalar.
    pub fn mul_scalar(&self, scalar: Fr) -> Projective<C> {
        self.mul_bigint(&scalar.into_bigint().0)
    }

    /// The negation `(x, −y)`.
    pub fn neg(&self) -> Self {
        if self.infinity {
            *self
        } else {
            Self::new_unchecked(self.x, -self.y)
        }
    }
}

impl<C: SwCurveConfig> core::ops::Neg for Affine<C> {
    type Output = Self;
    fn neg(self) -> Self {
        Affine::neg(&self)
    }
}

impl<C: SwCurveConfig> Projective<C> {
    /// The identity element.
    pub fn identity() -> Self {
        Self {
            x: C::BaseField::one(),
            y: C::BaseField::one(),
            z: C::BaseField::zero(),
        }
    }

    /// Returns true if the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// The subgroup generator.
    pub fn generator() -> Self {
        C::generator().into_projective()
    }

    /// Point doubling (`dbl-2009-l`, a = 0).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = ((self.x + b).square() - a - c).double();
        let e = a.double() + a;
        let f = e.square();
        let x3 = f - d.double();
        let eight_c = c.double().double().double();
        let y3 = e * (d - x3) - eight_c;
        let z3 = (self.y * self.z).double();
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian addition (`add-2007-bl`).
    pub fn add(&self, other: &Self) -> Self {
        if self.is_identity() {
            return *other;
        }
        if other.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x * z2z2;
        let u2 = other.x * z1z1;
        let s1 = self.y * other.z * z2z2;
        let s2 = other.y * self.z * z1z1;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + other.z).square() - z1z1 - z2z2) * h;
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (`madd-2007-bl`).
    pub fn add_assign_mixed(&mut self, other: &Affine<C>) {
        if other.infinity {
            return;
        }
        if self.is_identity() {
            *self = other.into_projective();
            return;
        }
        let z1z1 = self.z.square();
        let u2 = other.x * z1z1;
        let s2 = other.y * self.z * z1z1;
        if self.x == u2 {
            if self.y == s2 {
                *self = self.double();
            } else {
                *self = Self::identity();
            }
            return;
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = hh.double().double();
        let j = h * i;
        let r = (s2 - self.y).double();
        let v = self.x * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (self.y * j).double();
        let z3 = (self.z + h).square() - z1z1 - hh;
        *self = Self {
            x: x3,
            y: y3,
            z: z3,
        };
    }

    /// Scalar multiplication (double-and-add, MSB first).
    pub fn mul_bigint(&self, scalar: &[u64]) -> Self {
        let mut res = Self::identity();
        let mut started = false;
        for i in (0..scalar.len() * 64).rev() {
            if started {
                res = res.double();
            }
            if (scalar[i / 64] >> (i % 64)) & 1 == 1 {
                res = res.add(self);
                started = true;
            }
        }
        res
    }

    /// Scalar multiplication by a field scalar.
    pub fn mul_scalar(&self, scalar: Fr) -> Self {
        self.mul_bigint(&scalar.into_bigint().0)
    }

    /// Converts to affine coordinates (one field inversion).
    pub fn into_affine(self) -> Affine<C> {
        if self.is_identity() {
            return Affine::identity();
        }
        let zinv = self.z.inverse().expect("nonzero z");
        let zinv2 = zinv.square();
        Affine::new_unchecked(self.x * zinv2, self.y * zinv2 * zinv)
    }

    /// Batch conversion to affine (one shared inversion).
    pub fn batch_into_affine(points: &[Self]) -> Vec<Affine<C>> {
        let mut zs: Vec<C::BaseField> = points.iter().map(|p| p.z).collect();
        C::BaseField::batch_inverse(&mut zs);
        points
            .iter()
            .zip(zs.iter())
            .map(|(p, zinv)| {
                if p.is_identity() {
                    Affine::identity()
                } else {
                    let zinv2 = zinv.square();
                    Affine::new_unchecked(p.x * zinv2, p.y * zinv2 * *zinv)
                }
            })
            .collect()
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: -self.y,
            z: self.z,
        }
    }
}

impl<C: SwCurveConfig> PartialEq for Projective<C> {
    fn eq(&self, other: &Self) -> bool {
        match (self.is_identity(), other.is_identity()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            _ => {
                // (X1/Z1², Y1/Z1³) == (X2/Z2², Y2/Z2³) without inversions
                let z1z1 = self.z.square();
                let z2z2 = other.z.square();
                self.x * z2z2 == other.x * z1z1
                    && self.y * z2z2 * other.z == other.y * z1z1 * self.z
            }
        }
    }
}

impl<C: SwCurveConfig> Eq for Projective<C> {}

impl<C: SwCurveConfig> core::ops::Add for Projective<C> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Projective::add(&self, &rhs)
    }
}

impl<C: SwCurveConfig> core::ops::AddAssign for Projective<C> {
    fn add_assign(&mut self, rhs: Self) {
        *self = Projective::add(self, &rhs);
    }
}

impl<C: SwCurveConfig> core::ops::Sub for Projective<C> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Projective::add(&self, &rhs.neg())
    }
}

impl<C: SwCurveConfig> core::ops::Neg for Projective<C> {
    type Output = Self;
    fn neg(self) -> Self {
        Projective::neg(&self)
    }
}

impl<C: SwCurveConfig> Default for Projective<C> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<C: SwCurveConfig> From<Affine<C>> for Projective<C> {
    fn from(a: Affine<C>) -> Self {
        a.into_projective()
    }
}

impl<C: SwCurveConfig> From<Projective<C>> for Affine<C> {
    fn from(p: Projective<C>) -> Self {
        p.into_affine()
    }
}
