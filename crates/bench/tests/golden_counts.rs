//! Golden constraint-count regression tests for the Table I end-to-end
//! extraction circuits, via the counting synthesizer.
//!
//! The exact numbers below were captured from the quick-scale MNIST-MLP and
//! CIFAR10-CNN extraction circuits and must not drift silently: a gadget
//! edit that bloats (or shrinks) the circuits has to update these constants
//! *deliberately*, with the cost change called out in review. The counting
//! pass never evaluates a witness closure, so this also pins the shape the
//! witness-free setup driver sees.

use zkrownn_bench::{quick_cnn_spec, quick_mlp_spec};
use zkrownn_ff::Fr;
use zkrownn_r1cs::{Circuit, CountingSynthesizer};

/// (constraints, instance variables incl. the leading 1, witness variables)
const GOLDEN_MLP: (usize, usize, usize) = (27_553, 3_106, 27_767);
const GOLDEN_CNN: (usize, usize, usize) = (88_129, 226, 91_943);

fn count(circuit: &impl Circuit<Fr>) -> (usize, usize, usize) {
    let mut cs = CountingSynthesizer::<Fr>::new();
    circuit.synthesize(&mut cs).expect("counting never fails");
    (
        cs.num_constraints(),
        cs.num_instance_variables(),
        cs.num_witness_variables(),
    )
}

#[test]
fn mlp_extraction_circuit_counts_are_golden() {
    let spec = quick_mlp_spec();
    // the shape circuit carries no witness — counting must not need one
    assert_eq!(count(&spec.shape_circuit()), GOLDEN_MLP);
}

#[test]
fn cnn_extraction_circuit_counts_are_golden() {
    let spec = quick_cnn_spec();
    assert_eq!(count(&spec.shape_circuit()), GOLDEN_CNN);
}

#[test]
fn proving_mode_matches_the_golden_shape() {
    // the dense proving synthesis must agree with the counting pass
    let spec = quick_mlp_spec();
    let built = spec.build().expect("witnessed build");
    assert_eq!(
        (
            built.cs.num_constraints(),
            built.cs.num_instance_variables(),
            built.cs.num_witness_variables(),
        ),
        GOLDEN_MLP
    );
}
