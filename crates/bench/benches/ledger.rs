//! Ledger ablation benches: registration-accumulator append throughput and
//! membership/consistency proof generation + verification latency at
//! n ∈ {1k, 64k, 1M} leaves. Appends are amortized O(1) hashing, proofs
//! are O(log n) — these benches make the constants visible so a regression
//! in either shape shows up as a step change, not a mystery.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use zkrownn_ledger::{leaf_hash, verify_consistency_roots, verify_membership_hashes, Ledger};

const SIZES: [u64; 3] = [1_000, 64_000, 1_000_000];

/// A deterministic synthetic 64-byte registry leaf.
fn leaf_of(i: u64) -> [u8; 64] {
    let mut leaf = [0u8; 64];
    leaf[..8].copy_from_slice(&i.to_le_bytes());
    leaf[32..40].copy_from_slice(&(!i).to_le_bytes());
    leaf
}

fn build(n: u64) -> Ledger {
    let mut ledger = Ledger::new();
    for i in 0..n {
        ledger.append(&leaf_of(i));
    }
    ledger
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("ledger/append");
    // each sample hashes the full n-leaf build; keep the 1M entry cheap
    group.sample_size(3);
    for n in SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| build(black_box(n)).root())
        });
    }
    group.finish();
}

fn bench_proofs(c: &mut Criterion) {
    for n in SIZES {
        // built once outside the timing loops: proofs are O(log n) against
        // a standing ledger, and that is the shape the server serves them in
        let ledger = build(n);
        let root = ledger.root();
        let index = n / 2;
        let leaf = leaf_hash(&leaf_of(index));
        let membership = ledger.prove_membership(index).unwrap();
        let old = n / 3;
        let old_root = ledger.root_at(old);
        let consistency = ledger.prove_consistency(old).unwrap();

        let mut group = c.benchmark_group(format!("ledger/proofs/{n}"));
        group.bench_function("prove-membership", |b| {
            b.iter(|| ledger.prove_membership(black_box(index)).unwrap())
        });
        group.bench_function("verify-membership", |b| {
            b.iter(|| {
                assert!(verify_membership_hashes(
                    black_box(&root),
                    &leaf,
                    index,
                    n,
                    &membership
                ))
            })
        });
        group.bench_function("prove-consistency", |b| {
            b.iter(|| ledger.prove_consistency(black_box(old)).unwrap())
        });
        group.bench_function("verify-consistency", |b| {
            b.iter(|| {
                assert!(verify_consistency_roots(
                    black_box(&old_root),
                    old,
                    &root,
                    n,
                    &consistency
                ))
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_append, bench_proofs);
criterion_main!(benches);
