//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * `scaling/*` — prover cost vs. circuit size (constraints ∝ d³ for
//!   matmul; the paper's "runtimes increase with constraints" claim);
//! * `msm/*` — Pippenger multi-scalar multiplication throughput (the
//!   prover's dominant kernel);
//! * `fft/*` — radix-2 FFT over the scalar field (the `h`-polynomial step);
//! * `pairing/*` — the verifier's unit operations;
//! * `average/fold-vs-divide` — the fold-the-average optimization used by
//!   the end-to-end CNN circuit;
//! * `synthesis/mlp-setup-vs-prove` — the witness-free setup synthesizer
//!   vs. the proving synthesizer over the quick MNIST-MLP extraction
//!   circuit: setup no longer pays any witness-evaluation cost (and the
//!   counting driver is cheaper still);
//! * `verify_batch/*` — amortized batch verification through the
//!   `KeyRegistry` vs. naive per-claim verification (preparation + pairing
//!   check per claim), over 8 same-circuit claims;
//! * `field-backend/*` — the two Montgomery multiplication backends head
//!   to head over 8 independent base-field chains (the instruction-level-
//!   parallel regime the MSM bucket passes and FFT butterflies run in):
//!   the loop-structured schoolbook reference vs. the unrolled no-carry
//!   CIOS kernel, plus whichever of the two `ActiveBackend` resolved to at
//!   runtime;
//! * `prover-hot-path/*` — the prover-spine ablation over the quick
//!   MNIST-MLP extraction circuit: a cold `create_proof_from_cs` (matrices
//!   re-lowered, twiddle tables rebuilt per proof) vs. the cached
//!   `ProverContext` path, plus the isolated witness-map and MSM phases;
//! * `setup-hot-path/*` — the trusted-setup spine ablation over the quick
//!   MNIST-MLP A-query scalar vector: per-scalar serial fixed-base
//!   multiplication (Jacobian mixed adds + batch normalization — the
//!   pre-overhaul shape) vs. the signed-digit batch-affine `mul_many`
//!   kernel at one thread and at full parallelism (the parallel entry
//!   doubles as table-reuse-*on*; `table-reuse-off` re-pays the table
//!   build per run), plus the end-to-end `SetupContext::generate_with`
//!   keygen.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use zkrownn_curves::{msm::msm, G1Affine, G1Projective};
use zkrownn_ff::{Field, Fr};
use zkrownn_gadgets::matmul::{matmul, NumMatrix};
use zkrownn_groth16::{
    create_proof_from_cs, create_proof_with_context_and_randomness,
    generate_parameters_from_matrices, ProverContext,
};
use zkrownn_pairing::{multi_pairing, pairing, G2Prepared};
use zkrownn_poly::Radix2Domain;
use zkrownn_r1cs::{Circuit, CountingSynthesizer, ProvingSynthesizer, SetupSynthesizer};

fn bench_matmul_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/matmul-prove");
    group.sample_size(10);
    for d in [4usize, 8, 16] {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let entries: Vec<i128> = (0..(d * d) as i128).map(|i| i % 17 - 8).collect();
        let a = NumMatrix::alloc_witness(&mut cs, d, d, &entries, 8).unwrap();
        let b = NumMatrix::alloc_witness(&mut cs, d, d, &entries, 8).unwrap();
        let _ = matmul(&a, &b, &mut cs).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pk = generate_parameters_from_matrices(&cs.to_matrices(), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |bench, _| {
            bench.iter(|| create_proof_from_cs(&pk, &cs, &mut rng))
        });
    }
    group.finish();
}

fn bench_synthesis_modes(c: &mut Criterion) {
    // The tentpole claim of the mode-aware synthesis API: setup-mode
    // synthesis of the end-to-end MLP circuit evaluates no witness closure
    // (no trigger encoding, no feed-forward value computation, no
    // quotient/bit derivation), so it undercuts prove-mode synthesis.
    let spec = zkrownn_bench::quick_mlp_spec();
    let mut group = c.benchmark_group("synthesis/mlp-setup-vs-prove");
    group.sample_size(10);
    group.bench_function("setup-mode", |b| {
        b.iter(|| {
            let mut cs = SetupSynthesizer::<Fr>::new();
            spec.shape_circuit().synthesize(&mut cs).unwrap();
            cs.num_constraints()
        })
    });
    group.bench_function("prove-mode", |b| {
        b.iter(|| {
            let mut cs = ProvingSynthesizer::<Fr>::new();
            spec.circuit().synthesize(&mut cs).unwrap();
            cs.num_constraints()
        })
    });
    group.bench_function("count-mode", |b| {
        b.iter(|| {
            let mut cs = CountingSynthesizer::<Fr>::new();
            spec.shape_circuit().synthesize(&mut cs).unwrap();
            cs.num_constraints()
        })
    });
    group.finish();
}

fn bench_prover_hot_path(c: &mut Criterion) {
    // The tentpole claim of the prover overhaul: with the context cached
    // (lowered matrices + twiddle tables + vanishing constant), a proof is
    // just witness map + MSMs — and both of those kernels got faster
    // (table-driven parallel FFT; signed-digit batch-affine Pippenger).
    let spec = zkrownn_bench::quick_mlp_spec();
    let mut cs = ProvingSynthesizer::<Fr>::new();
    spec.circuit().synthesize(&mut cs).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let pk = generate_parameters_from_matrices(&cs.to_matrices(), &mut rng);
    let ctx = ProverContext::for_cs(&cs);
    let z = cs.full_assignment();

    let mut group = c.benchmark_group("prover-hot-path");
    group.sample_size(10);
    group.bench_function("cold-context", |b| {
        // rebuilds matrices, domain and twiddle tables on every proof
        b.iter(|| create_proof_from_cs(&pk, &cs, &mut rng))
    });
    group.bench_function("cached-context", |b| {
        let r = Fr::random(&mut rng);
        let s = Fr::random(&mut rng);
        b.iter(|| create_proof_with_context_and_randomness(&pk, &ctx, &z, r, s))
    });
    group.bench_function("witness-map-only", |b| b.iter(|| ctx.witness_map(&z)));
    group.bench_function("context-build-only", |b| {
        b.iter(|| ProverContext::for_cs(&cs).domain().size)
    });
    group.finish();
}

fn bench_setup_hot_path(c: &mut Criterion) {
    // The tentpole claim of the setup overhaul: keygen is fixed-base
    // multiplication, and the signed-digit batch-affine kernel beats the
    // per-scalar windowed path even before parallelism — while the shared
    // table amortizes across every key family.
    use zkrownn_curves::{FixedBaseTable, G1Config};
    use zkrownn_groth16::{qap, SetupContext, ToxicWaste};

    let spec = zkrownn_bench::quick_mlp_spec();
    let mut cs = ProvingSynthesizer::<Fr>::new();
    spec.circuit().synthesize(&mut cs).unwrap();
    let matrices = cs.to_matrices();
    let toxic = ToxicWaste {
        alpha: Fr::from_u64(11),
        beta: Fr::from_u64(12),
        gamma: Fr::from_u64(13),
        delta: Fr::from_u64(14),
        tau: Fr::from_u64(15),
    };
    // the A-query scalar vector — one of the six key families
    let scalars = qap::evaluate_qap_at(&matrices, toxic.tau).u;
    let window = FixedBaseTable::<G1Config>::suggested_window(scalars.len());
    let table = FixedBaseTable::new(G1Projective::generator(), window);

    let mut group = c.benchmark_group("setup-hot-path");
    group.sample_size(10);
    group.bench_function("per-scalar-serial", |b| {
        // the pre-overhaul kernel: one windowed Jacobian walk per scalar,
        // then one batch normalization over the whole vector
        b.iter(|| {
            let jac: Vec<G1Projective> = scalars.iter().map(|s| table.mul(*s)).collect();
            G1Projective::batch_into_affine(&jac)
        })
    });
    group.bench_function("batch-affine-1-thread", |b| {
        b.iter(|| table.mul_many_with_threads(&scalars, 1))
    });
    // parallel over the prebuilt table — this measurement *is* the
    // table-reuse-on configuration; table-reuse-off below re-pays the
    // table build inside each run for the delta
    group.bench_function("batch-affine-parallel", |b| {
        b.iter(|| table.mul_many(&scalars))
    });
    group.bench_function("table-reuse-off", |b| {
        b.iter(|| {
            let fresh = FixedBaseTable::new(G1Projective::generator(), window);
            fresh.mul_many(&scalars)
        })
    });
    let setup_ctx = SetupContext::new(matrices);
    group.bench_function("full-keygen", |b| {
        b.iter(|| setup_ctx.generate_with(&toxic).serialized_size())
    });
    group.finish();
}

fn bench_msm(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let g = G1Projective::generator();
    let mut group = c.benchmark_group("msm/g1");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let bases: Vec<G1Affine> = (0..n)
            .map(|_| g.mul_scalar(Fr::random(&mut rng)).into_affine())
            .collect();
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| msm(&bases, &scalars))
        });
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("fft/radix2");
    for log_n in [10u32, 14] {
        let n = 1usize << log_n;
        let domain = Radix2Domain::<Fr>::new(n).unwrap();
        let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| domain.fft(&coeffs))
        });
    }
    group.finish();
}

fn bench_pairing(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let p = G1Projective::generator()
        .mul_scalar(Fr::random(&mut rng))
        .into_affine();
    let q = zkrownn_curves::G2Projective::generator()
        .mul_scalar(Fr::random(&mut rng))
        .into_affine();
    c.bench_function("pairing/single", |b| b.iter(|| pairing(&p, &q)));
    let prepared = G2Prepared::from(q);
    c.bench_function("pairing/triple-product", |b| {
        b.iter(|| {
            multi_pairing(&[
                (p, prepared.clone()),
                (p, prepared.clone()),
                (p, prepared.clone()),
            ])
        })
    });
}

fn bench_average_fold(c: &mut Criterion) {
    // constraint-count comparison surfaces in the timing: folded averaging
    // removes every division gadget from the µ computation
    let mut group = c.benchmark_group("average/fold-vs-divide");
    group.sample_size(10);
    for fold in [false, true] {
        let label = if fold { "folded" } else { "divide" };
        let mut cs = ProvingSynthesizer::<Fr>::new();
        use zkrownn_ff::PrimeField;
        use zkrownn_gadgets::cmp::div_by_const;
        use zkrownn_gadgets::Num;
        let rows: Vec<Vec<Num>> = (0..3)
            .map(|r| {
                (0..64)
                    .map(|i| {
                        Num::alloc_witness(&mut cs, || Ok(Fr::from_i128((i + r) as i128)), 20)
                            .unwrap()
                    })
                    .collect()
            })
            .collect();
        for j in 0..64 {
            let mut s = Num::zero();
            for row in &rows {
                s = s.add(&row[j]);
            }
            if !fold {
                let _ = div_by_const(&s, 3, &mut cs).unwrap();
            }
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // anchor the circuit with one constraint if folding removed them all
        if cs.num_constraints() == 0 {
            let one = Num::alloc_witness(&mut cs, || Ok(Fr::one()), 1).unwrap();
            let _ = one.mul(&one, &mut cs).unwrap();
        }
        let pk = generate_parameters_from_matrices(&cs.to_matrices(), &mut rng);
        group.bench_function(label, |b| {
            b.iter(|| create_proof_from_cs(&pk, &cs, &mut rng))
        });
    }
    group.finish();
}

fn bench_field_backend(c: &mut Criterion) {
    use zkrownn_ff::fq::FqParams;
    use zkrownn_ff::{
        ActiveBackend, BigInt256, FieldBackend, Fq, PrimeField, SchoolbookBackend, UnrolledBackend,
    };

    // 8 independent Montgomery chains: enough in-flight products to expose
    // the pipelining difference between the kernels (a single dependent
    // chain hides it behind the carry latency). Mirrors the methodology of
    // the `backend_speedup` gate in `zkrownn-ff/tests/mul_throughput.rs`.
    const LANES: usize = 8;
    let y = Fq::from_u64(3).pow(&[0x1357_9bdf]).into_bigint();
    let mut seed = [BigInt256::ZERO; LANES];
    for (i, x) in seed.iter_mut().enumerate() {
        *x = Fq::from_u64(0x1234_5678_9abc_def1)
            .pow(&[0xfeed_beef + i as u64])
            .into_bigint();
    }

    fn chains<B: FieldBackend, const LANES: usize>(
        seed: &[BigInt256; LANES],
        y: &BigInt256,
        rounds: usize,
    ) -> [BigInt256; LANES] {
        let mut xs = *seed;
        for _ in 0..rounds {
            for x in xs.iter_mut() {
                *x = B::mul_reduce::<FqParams>(x, y);
            }
        }
        xs
    }

    let mut group = c.benchmark_group("field-backend");
    group.bench_function("schoolbook", |b| {
        b.iter(|| chains::<SchoolbookBackend, LANES>(&seed, &y, 1024))
    });
    group.bench_function("unrolled", |b| {
        b.iter(|| chains::<UnrolledBackend, LANES>(&seed, &y, 1024))
    });
    // `ActiveBackend` aliases one of the two above (feature-selected), so
    // this row should match its target — a drift is a wiring bug
    group.bench_function(format!("active-{}", ActiveBackend::NAME), |b| {
        b.iter(|| chains::<ActiveBackend, LANES>(&seed, &y, 1024))
    });
    group.finish();
}

fn bench_verify_batch(c: &mut Criterion) {
    use zkrownn::{Authority, KeyRegistry, SignedClaim, VerifierKit};
    use zkrownn_gadgets::FixedConfig;

    // a tiny deterministic spec: no training, positive projections, so the
    // all-ones signature extracts exactly and every claim carries verdict 1
    let cfg = FixedConfig::default();
    let model = zkrownn::QuantizedModel {
        layers: vec![
            zkrownn::QuantLayer::Dense {
                in_dim: 2,
                out_dim: 2,
                w: vec![cfg.encode(0.5); 4],
                b: vec![0; 2],
            },
            zkrownn::QuantLayer::ReLU,
        ],
        input_len: 2,
        cfg,
    };
    let spec = zkrownn::ExtractionSpec {
        model,
        triggers: vec![vec![cfg.encode(1.0); 2]; 2],
        projection: vec![cfg.encode(0.25); 8],
        signature: vec![true; 4],
        max_errors: 0,
        fold_average: false,
        cfg,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    let claims: Vec<SignedClaim> = (0..8)
        .map(|_| prover.prove(&mut rng).expect("honest claim"))
        .collect();
    let vk = verifier.verifying_key().clone();
    let id = verifier.circuit_id();

    let mut group = c.benchmark_group("verify_batch");
    group.sample_size(10);
    // naive service: pairing preparation + a 3-Miller-loop check per claim
    group.bench_function("one-shot-x8", |b| {
        b.iter(|| {
            for claim in &claims {
                let kit = VerifierKit::from_parts(vk.clone(), id);
                kit.verify(claim).expect("claim verifies");
            }
        })
    });
    // amortized: one preparation, one input vector per distinct statement,
    // one random-linear-combination pairing check for the whole batch
    group.bench_function("batched-x8", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let mut registry = KeyRegistry::new();
            registry.register(id, &vk);
            for result in registry.verify_batch(&claims, &mut rng) {
                result.expect("claim verifies");
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul_scaling,
    bench_synthesis_modes,
    bench_prover_hot_path,
    bench_setup_hot_path,
    bench_msm,
    bench_fft,
    bench_pairing,
    bench_average_fold,
    bench_field_backend,
    bench_verify_batch
);
criterion_main!(benches);
