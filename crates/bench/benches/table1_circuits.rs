//! Criterion benches over the Table I circuits at reduced ("quick") scale —
//! statistically robust timings of the prover and verifier per circuit.
//! (Paper-scale single-shot measurements come from the `table1` binary; at
//! 10⁶ constraints per row, criterion's repeated sampling is impractical.)

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use zkrownn_bench::{build_row, Scale};
use zkrownn_ff::Fr;
use zkrownn_groth16::{
    create_proof_from_cs, generate_parameters_from_matrices, verify_proof_prepared,
};

fn bench_rows(c: &mut Criterion) {
    // BER / ReLU / HardThresholding / Sigmoid are the cheap rows; the heavy
    // rows (matmult, conv3d, average2d, end-to-end) are still seconds-scale
    // even at quick size, so we bench their verifier only.
    for row in ["ber", "relu", "hardthreshold", "sigmoid"] {
        let cs = build_row(row, Scale::Quick);
        let matrices = cs.to_matrices();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let pk = generate_parameters_from_matrices(&matrices, &mut rng);

        let mut group = c.benchmark_group(format!("table1/{row}"));
        group.sample_size(10);
        group.bench_function("prove", |b| {
            b.iter(|| create_proof_from_cs(&pk, &cs, &mut rng))
        });
        let proof = create_proof_from_cs(&pk, &cs, &mut rng);
        let publics: Vec<Fr> = cs.instance_assignment()[1..].to_vec();
        let pvk = pk.vk.prepare();
        group.bench_function("verify", |b| {
            b.iter(|| verify_proof_prepared(&pvk, &proof, &publics).unwrap())
        });
        group.finish();
    }

    for row in ["matmult", "conv3d", "average2d", "mnist-mlp", "cifar-cnn"] {
        let cs = build_row(row, Scale::Quick);
        let matrices = cs.to_matrices();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let pk = generate_parameters_from_matrices(&matrices, &mut rng);
        let proof = create_proof_from_cs(&pk, &cs, &mut rng);
        let publics: Vec<Fr> = cs.instance_assignment()[1..].to_vec();
        let pvk = pk.vk.prepare();
        let mut group = c.benchmark_group(format!("table1/{row}"));
        group.sample_size(10);
        group.bench_function("verify", |b| {
            b.iter(|| verify_proof_prepared(&pvk, &proof, &publics).unwrap())
        });
        group.finish();
    }
}

criterion_group!(benches, bench_rows);
criterion_main!(benches);
