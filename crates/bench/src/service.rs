//! Load-generation harness for `zkrownn-service` — the `BENCH_service.json`
//! producer.
//!
//! Three pieces:
//!
//! 1. a **corpus builder**: runs [`Authority::setup`] + [`zkrownn::ProverKit::prove`]
//!    for the quick-MLP and quick-CNN circuits once and writes the results
//!    to disk (`.vk` key registrations + `.claim` artifacts), so the server
//!    and the load generator never pay proving cost inside a measurement;
//! 2. a **scenario runner**: `N` client threads hammer a running authority
//!    with corpus claims over independent connections, measuring
//!    client-observed round-trip latency and throughput, and diffing the
//!    server's stats endpoint around the run to recover the mean coalesced
//!    batch size;
//! 3. a **JSON writer** for the `zkrownn-bench-service/v1` document the CI
//!    perf gate consumes.

use std::path::Path;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use zkrownn::{Artifact, Authority, SignedClaim};
use zkrownn_groth16::VerifyingKey;
use zkrownn_service::{
    registration_bytes, stats_field_u64, Client, RetryPolicy, RetryingClient, Status,
};
use zkrownn_store::write_file_atomic;

use crate::{quick_cnn_spec, quick_mlp_spec};

/// Claims per scenario in `--smoke` mode (CI).
pub const SMOKE_CLAIMS: usize = 96;
/// Claims per scenario in full mode.
pub const FULL_CLAIMS: usize = 384;

/// A generated claim corpus: key registrations plus signed claims.
pub struct Corpus {
    /// `(circuit id, statement digest, verifying key)` registrations, one
    /// per circuit — the digest is the second half of the circuit's
    /// registration-ledger leaf.
    pub keys: Vec<([u8; 32], [u8; 32], VerifyingKey)>,
    /// Serialized [`SignedClaim`] artifacts, mixed across circuits.
    pub claims: Vec<Vec<u8>>,
}

/// Builds the benchmark corpus in memory: quick-MLP and quick-CNN setups
/// (deterministic seeds, so reruns regenerate byte-identical keys) with
/// `mlp`/`cnn` distinct proofs each. Claims are interleaved across the two
/// circuits so concurrent clients exercise both registry shards.
pub fn build_corpus(mlp: usize, cnn: usize) -> Corpus {
    let mut keys = Vec::new();
    let mut per_circuit: Vec<Vec<Vec<u8>>> = Vec::new();
    for (spec, seed, count) in [
        (quick_mlp_spec(), 0x5eed_u64, mlp),
        (quick_cnn_spec(), 0xc0de_u64, cnn),
    ] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (prover, verifier) = Authority::setup(&spec, &mut rng);
        keys.push((
            *verifier.circuit_id().as_bytes(),
            prover.statement().content_digest(),
            verifier.verifying_key().clone(),
        ));
        let claims = (0..count)
            .map(|_| {
                prover
                    .prove(&mut rng)
                    .expect("corpus circuits carry a valid witness")
                    .to_bytes()
            })
            .collect();
        per_circuit.push(claims);
    }
    // interleave so a round-robin load generator alternates circuits
    let mut claims = Vec::new();
    let longest = per_circuit.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        for circuit in &per_circuit {
            if let Some(c) = circuit.get(i) {
                claims.push(c.clone());
            }
        }
    }
    Corpus { keys, claims }
}

/// Writes a corpus to `dir` as `key-N.vk` registration files and
/// `claim-NNN.claim` artifacts.
///
/// Every file is committed atomically (temp file + rename), so a corpus
/// regeneration interrupted mid-write never leaves a half-written `.vk`
/// or `.claim` at a path a later `--keys`/`--corpus` load would trust.
pub fn write_corpus(corpus: &Corpus, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (i, (id, digest, vk)) in corpus.keys.iter().enumerate() {
        let bytes = registration_bytes(zkrownn::CircuitId::from_bytes(*id), *digest, vk);
        write_file_atomic(&dir.join(format!("key-{i}.vk")), &bytes)?;
    }
    for (i, claim) in corpus.claims.iter().enumerate() {
        write_file_atomic(&dir.join(format!("claim-{i:03}.claim")), claim)?;
    }
    Ok(())
}

/// Loads a corpus written by [`write_corpus`] (files sorted by name, so the
/// interleaving order is preserved).
pub fn load_corpus(dir: &Path) -> std::io::Result<Corpus> {
    let mut vk_paths = Vec::new();
    let mut claim_paths = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        match path.extension().and_then(|e| e.to_str()) {
            Some("vk") => vk_paths.push(path),
            Some("claim") => claim_paths.push(path),
            _ => {}
        }
    }
    vk_paths.sort();
    claim_paths.sort();
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut keys = Vec::new();
    for path in vk_paths {
        let bytes = std::fs::read(&path)?;
        let (id, digest, vk) = zkrownn_service::parse_registration(&bytes)
            .map_err(|e| bad(format!("{}: {e}", path.display())))?;
        keys.push((*id.as_bytes(), digest, vk));
    }
    let mut claims = Vec::new();
    for path in claim_paths {
        let bytes = std::fs::read(&path)?;
        // validate eagerly so a corrupt corpus fails loudly, not as a
        // mysteriously slow all-errors benchmark
        SignedClaim::from_bytes(&bytes).map_err(|e| bad(format!("{}: {e}", path.display())))?;
        claims.push(bytes);
    }
    if keys.is_empty() || claims.is_empty() {
        return Err(bad(format!("{}: empty corpus", dir.display())));
    }
    Ok(Corpus { keys, claims })
}

/// One measured load scenario.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario tag, e.g. `clients-16` / `clients-16-nobatch`.
    pub name: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Whether server-side claim coalescing was enabled.
    pub batching: bool,
    /// Claims submitted across all clients.
    pub total_claims: usize,
    /// Responses that were not `Ok` (every corpus claim should verify).
    pub errors: usize,
    /// Wall time of the client phase.
    pub elapsed_s: f64,
    /// Throughput over the whole run.
    pub claims_per_s: f64,
    /// Median client-observed round-trip latency.
    pub p50_ms: f64,
    /// 99th-percentile client-observed round-trip latency.
    pub p99_ms: f64,
    /// Mean RLC batch size the server formed during this scenario (from
    /// stats-endpoint diffs; 1.0 when batching is off).
    pub mean_batch: f64,
    /// Largest batch the server has formed so far (cumulative across
    /// scenarios — a max can't be diffed from the stats endpoint).
    pub batch_max: u64,
    /// Reconnect-and-retry cycles the clients performed (absorbed `Busy`
    /// sheds and transport hiccups; invisible in `errors` by design).
    pub retries: u64,
}

fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

/// Runs one scenario against a running authority at `addr`: toggles
/// batching, fires `clients` threads submitting `total` corpus claims
/// round-robin, and reports throughput / latency / batch occupancy.
pub fn run_scenario(
    addr: &str,
    corpus: &Corpus,
    clients: usize,
    total: usize,
    batching: bool,
) -> Result<ScenarioResult, String> {
    let io = |stage: &'static str| move |e: zkrownn_service::ProtocolError| format!("{stage}: {e}");
    let mut control =
        Client::connect_with_retry(addr, Duration::from_secs(10)).map_err(|e| e.to_string())?;
    control.set_batching(batching).map_err(io("set_batching"))?;

    // warm the registry's pairing preparation and the input-MSM cache so
    // the measurement sees steady-state service cost, then snapshot stats
    for claim in corpus.claims.iter().take(corpus.keys.len()) {
        let r = control.verify_bytes(claim.clone()).map_err(io("warmup"))?;
        if r.status != Status::Ok {
            return Err(format!("warmup claim rejected: {:?}", r.status));
        }
    }
    let before = control.stats_json().map_err(io("stats"))?;

    let per_client = total / clients;
    let start = Instant::now();
    // per-client outcome: (verified claims, retries taken, latencies)
    type ClientOutcome = Result<(usize, u64, Vec<Duration>), String>;
    let results: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let claims = &corpus.claims;
                scope.spawn(move || {
                    // retrying client: a Busy shed from a saturated server
                    // or a dropped connection is absorbed by backoff and
                    // reconnect, never surfaced as a scenario error
                    let mut client = RetryingClient::new(
                        addr,
                        RetryPolicy {
                            seed: 0xb0b0 + c as u64, // decorrelate client backoffs
                            ..RetryPolicy::default()
                        },
                    );
                    let mut errors = 0usize;
                    let mut latencies = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let claim = &claims[(c + i * clients) % claims.len()];
                        let sent = Instant::now();
                        let response = client
                            .verify_bytes(claim.clone())
                            .map_err(|e| format!("client {c}: {e}"))?;
                        latencies.push(sent.elapsed());
                        if response.status != Status::Ok {
                            errors += 1;
                        }
                    }
                    Ok((errors, client.retries(), latencies))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let after = control.stats_json().map_err(io("stats"))?;

    let mut errors = 0usize;
    let mut retries = 0u64;
    let mut latencies = Vec::new();
    for r in results {
        let (e, rt, l) = r?;
        errors += e;
        retries += rt;
        latencies.extend(l);
    }
    latencies.sort();

    let field = |json: &str, key: &str| stats_field_u64(json, key).unwrap_or(0);
    let batches = field(&after, "batches").saturating_sub(field(&before, "batches"));
    let batched = field(&after, "batched_claims").saturating_sub(field(&before, "batched_claims"));
    let mean_batch = if batches == 0 {
        1.0
    } else {
        batched as f64 / batches as f64
    };
    let batch_max = stats_field_u64(&after, "batch_max").unwrap_or(0);

    let submitted = per_client * clients;
    let elapsed_s = elapsed.as_secs_f64();
    Ok(ScenarioResult {
        name: format!(
            "clients-{clients}{}",
            if batching { "" } else { "-nobatch" }
        ),
        clients,
        batching,
        total_claims: submitted,
        errors,
        elapsed_s,
        claims_per_s: submitted as f64 / elapsed_s,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        mean_batch,
        batch_max,
        retries,
    })
}

/// The standard scenario sweep: client-count scaling with coalescing on,
/// plus the batching-off ablation at the highest client count.
pub fn standard_scenarios(
    addr: &str,
    corpus: &Corpus,
    total: usize,
) -> Result<Vec<ScenarioResult>, String> {
    let mut out = Vec::new();
    for clients in [1usize, 4, 16] {
        out.push(run_scenario(addr, corpus, clients, total, true)?);
    }
    out.push(run_scenario(addr, corpus, 16, total, false)?);
    Ok(out)
}

/// Serializes scenario results as the `BENCH_service.json` document
/// (`zkrownn-bench-service/v1`). The `service-batching` ablation pair is
/// the `clients-16` / `clients-16-nobatch` rows.
pub fn service_json(results: &[ScenarioResult], smoke: bool, corpus_claims: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"zkrownn-bench-service/v1\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!(
        "  \"threads\": {},\n",
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!("  \"corpus_claims\": {corpus_claims},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"clients\": {}, \"batching\": {}, \
             \"total_claims\": {}, \"errors\": {}, \"retries\": {}, \"elapsed_s\": {:.6}, \
             \"claims_per_s\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"mean_batch\": {:.3}, \"batch_max\": {}}}{}\n",
            r.name,
            r.clients,
            r.batching,
            r.total_claims,
            r.errors,
            r.retries,
            r.elapsed_s,
            r.claims_per_s,
            r.p50_ms,
            r.p99_ms,
            r.mean_batch,
            r.batch_max,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Formats scenario results as a human-readable table on `w`.
pub fn print_results(
    w: &mut impl std::io::Write,
    results: &[ScenarioResult],
) -> std::io::Result<()> {
    writeln!(
        w,
        "| scenario | claims | claims/s | p50 (ms) | p99 (ms) | mean batch | errors | retries |"
    )?;
    writeln!(w, "|---|---:|---:|---:|---:|---:|---:|---:|")?;
    for r in results {
        writeln!(
            w,
            "| {} | {} | {:.1} | {:.2} | {:.2} | {:.2} | {} | {} |",
            r.name,
            r.total_claims,
            r.claims_per_s,
            r.p50_ms,
            r.p99_ms,
            r.mean_batch,
            r.errors,
            r.retries
        )?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_index_correctly() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&sorted, 0.50), 50.0);
        assert_eq!(percentile_ms(&sorted, 0.99), 99.0);
        assert_eq!(percentile_ms(&sorted, 1.0), 100.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn service_json_is_well_formed() {
        let row = ScenarioResult {
            name: "clients-4".into(),
            clients: 4,
            batching: true,
            total_claims: 96,
            errors: 0,
            elapsed_s: 1.5,
            claims_per_s: 64.0,
            p50_ms: 20.0,
            p99_ms: 55.5,
            mean_batch: 3.2,
            batch_max: 7,
            retries: 1,
        };
        let json = service_json(&[row.clone(), row], true, 6);
        assert_eq!(json.matches("\"retries\": 1").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"schema\": \"zkrownn-bench-service/v1\""));
        assert!(json.contains("\"smoke\": true"));
        assert_eq!(json.matches("\"name\": \"clients-4\"").count(), 2);
        assert!(json.trim_end().ends_with("]\n}"));
    }
}
