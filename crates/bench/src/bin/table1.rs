//! `table1` — regenerates the paper's evaluation tables.
//!
//! ```text
//! table1                         # all Table I rows at paper scale
//! table1 --scale quick           # reduced dimensions (seconds, not minutes)
//! table1 --scale full            # paper dimensions through the on-disk key
//!                                # store (streaming setup + prover)
//! table1 --mem-budget 64         # cap the streaming working set at 64 MB
//!                                # (routes any scale through the store)
//! table1 --row matmult --row ber # selected rows only
//! table1 --json                  # also emit machine-readable BENCH_prover.json
//! table1 --table2                # print the Table II architecture spec
//! table1 --robustness            # watermark-robustness sweep (attack study)
//! table1 --fixed-point           # fixed-point sigmoid precision ablation
//! table1 --smoke                 # CI smoke: cheapest rows at quick scale,
//!                                # plus cifar-cnn streamed at 64 MB
//! ```

use zkrownn_bench::{
    build_row, format_table, measure, measure_with_store, prover_json, MemoryBudget, RowMetrics,
    Scale, ROW_NAMES,
};

/// Default streaming budget for `--scale full` when `--mem-budget` is not
/// given: large enough that chunking costs little, far below the paper
/// rows' multi-GB in-memory keys.
const DEFAULT_FULL_BUDGET_MB: usize = 256;

/// Streaming budget for the store-backed `--smoke` row.
const SMOKE_BUDGET_MB: usize = 64;

fn print_table2() {
    println!("Table II — DNN benchmark architectures\n");
    println!("| Dataset | Architecture |");
    println!("|---|---|");
    println!("| MNIST | 784 - FC(512) - FC(512) - FC(10) |");
    println!(
        "| CIFAR10 | 3×32×32 - C(32,3,2) - C(32,3,1) - MP(2,1) - C(64,3,1) - C(64,3,1) - MP(2,1) - FC(512) - FC(10) |"
    );
    println!();
    println!("(both instantiated in zkrownn::benchmarks and validated by its tests)");
}

fn run_robustness() {
    use rand::SeedableRng;
    use zkrownn_deepsigns::attacks::{finetune, prune};
    use zkrownn_deepsigns::{embed, extract, generate_keys, EmbedConfig, KeyGenConfig};
    use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer, Network};

    println!("Watermark robustness sweep (DeepSigns claims inherited by ZKROWNN §IV-A)\n");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let gmm = GmmConfig {
        input_shape: vec![64],
        num_classes: 8,
        mean_scale: 1.0,
        noise_std: 0.3,
    };
    let data = generate_gmm(&gmm, 320, &mut rng);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(64, 96, &mut rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(96, 8, &mut rng)),
    ]);
    net.train(&data.xs, &data.ys, 6, 0.03);
    let keys = generate_keys(
        &KeyGenConfig {
            layer: 1,
            activation_dim: 96,
            signature_bits: 32,
            num_triggers: 8,
            projection_std: 1.0 / (96f32).sqrt(),
        },
        &data,
        &mut rng,
    );
    embed(
        &mut net,
        &keys,
        &data.xs,
        &data.ys,
        &EmbedConfig {
            lambda: 5.0,
            epochs: 30,
            lr: 0.01,
        },
    );
    let base_acc = net.accuracy(&data.xs, &data.ys);
    println!(
        "baseline: BER = {:.3}, accuracy = {:.1}%\n",
        extract(&net, &keys).1,
        100.0 * base_acc
    );

    println!("| Pruning fraction | BER | Accuracy |");
    println!("|---:|---:|---:|");
    for frac in [0.1f32, 0.2, 0.3, 0.5, 0.7, 0.9] {
        let mut pruned = net.clone();
        prune(&mut pruned, frac);
        let (_, ber) = extract(&pruned, &keys);
        println!(
            "| {frac:.1} | {ber:.3} | {:.1}% |",
            100.0 * pruned.accuracy(&data.xs, &data.ys)
        );
    }

    println!("\n| Fine-tune epochs | BER | Accuracy |");
    println!("|---:|---:|---:|");
    for epochs in [1usize, 3, 5, 10] {
        let mut tuned = net.clone();
        finetune(&mut tuned, &data.xs, &data.ys, epochs, 0.01);
        let (_, ber) = extract(&tuned, &keys);
        println!(
            "| {epochs} | {ber:.3} | {:.1}% |",
            100.0 * tuned.accuracy(&data.xs, &data.ys)
        );
    }
}

fn run_fixed_point_ablation() {
    use zkrownn_gadgets::fixed::FixedConfig;
    use zkrownn_gadgets::sigmoid::{sigmoid_exact_f64, sigmoid_fixed_reference, sigmoid_poly_f64};

    println!("Fixed-point sigmoid precision ablation (scale-bits sweep)\n");
    println!("| frac bits | sigmoid bits | max |fixed−poly| on [-4,4] | max |poly−σ| on [-4,4] | c9 representable |");
    println!("|---:|---:|---:|---:|---:|");
    for (f, s) in [(8u32, 24u32), (12, 28), (16, 32), (20, 36), (24, 40)] {
        let cfg = FixedConfig {
            frac_bits: f,
            sigmoid_frac_bits: s,
            int_bits: 16,
        };
        let mut max_fixed_err = 0f64;
        let mut max_poly_err = 0f64;
        for i in -64..=64 {
            let x = i as f64 / 16.0;
            let xi = cfg.encode(x);
            let fixed = cfg.decode(sigmoid_fixed_reference(xi, &cfg));
            let poly = sigmoid_poly_f64(x);
            max_fixed_err = max_fixed_err.max((fixed - poly).abs());
            max_poly_err = max_poly_err.max((poly - sigmoid_exact_f64(x)).abs());
        }
        let c9_ok = zkrownn_gadgets::fixed::encode_fixed(7.2e-9, s) != 0;
        println!("| {f} | {s} | {max_fixed_err:.2e} | {max_poly_err:.2e} | {c9_ok} |");
    }
    println!("\n(default config: 16 tensor bits / 32 sigmoid bits — the smallest sigmoid scale where the x⁹ Chebyshev coefficient survives)");
}

fn report_row(m: &RowMetrics) {
    eprintln!(
        "[{}] setup {:.1?} (qap {:.1?}, commit {:.1?}), prove {:.1?} (witness_map {:.1?}, msm {:.1?}), verify {:.2?}",
        m.name,
        m.setup_time, m.setup_qap_time, m.setup_commit_time,
        m.prove_time, m.witness_map_time, m.msm_time, m.verify_time
    );
    if m.key_segments > 0 {
        eprintln!(
            "[{}] key store: {} segments, {:.2} MB on disk, peak RSS {:.1} MB",
            m.name,
            m.key_segments,
            m.pk_bytes as f64 / 1e6,
            m.peak_rss_bytes as f64 / 1e6
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: table1 [--scale paper|quick|full] [--mem-budget MB]\n\
             \x20      [--row NAME]... [--json]\n\
             \x20      [--table2] [--robustness] [--fixed-point] [--smoke]\n\
             rows: {}",
            ROW_NAMES.join(", ")
        );
        return;
    }
    if args.iter().any(|a| a == "--table2") {
        print_table2();
        return;
    }
    if args.iter().any(|a| a == "--robustness") {
        run_robustness();
        return;
    }
    if args.iter().any(|a| a == "--fixed-point") {
        run_fixed_point_ablation();
        return;
    }

    // --smoke: the CI bitrot check — cheapest rows at quick scale, so the
    // whole build→setup→prove→verify path runs in seconds.
    let smoke = args.iter().any(|a| a == "--smoke");
    let mem_budget_mb: Option<usize> = args.iter().position(|a| a == "--mem-budget").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&mb| mb > 0)
            .unwrap_or_else(|| panic!("--mem-budget expects a positive MB count"))
    });
    let scale_arg = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    // `full` is paper dimensions routed through the on-disk key store, so
    // the big rows run without materializing multi-GB proving keys; an
    // explicit --mem-budget routes whichever scale was picked the same way
    let (scale, store_budget) = match scale_arg {
        Some("quick") => (Scale::Quick, mem_budget_mb.map(MemoryBudget::from_mb)),
        Some("full") => (
            Scale::Paper,
            Some(MemoryBudget::from_mb(
                mem_budget_mb.unwrap_or(DEFAULT_FULL_BUDGET_MB),
            )),
        ),
        None if smoke => (Scale::Quick, mem_budget_mb.map(MemoryBudget::from_mb)),
        _ => (Scale::Paper, mem_budget_mb.map(MemoryBudget::from_mb)),
    };
    let mut rows: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--row")
        .filter_map(|(i, _)| args.get(i + 1).map(String::as_str))
        .collect();
    if rows.is_empty() {
        rows = if smoke {
            vec!["ber", "relu", "hardthreshold"]
        } else {
            ROW_NAMES.to_vec()
        };
    }

    println!(
        "ZKROWNN Table I reproduction — scale: {scale:?}, {} threads{}\n",
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1),
        match store_budget {
            Some(b) => format!(", streaming key store @ {} MB", b.bytes() >> 20),
            None => String::new(),
        }
    );
    let mut measured: Vec<RowMetrics> = Vec::new();
    for row in rows {
        let canonical: &'static str = ROW_NAMES
            .iter()
            .find(|r| **r == row)
            .unwrap_or_else(|| panic!("unknown row {row:?}; known: {ROW_NAMES:?}"));
        eprintln!("[{canonical}] building circuit …");
        let cs = build_row(canonical, scale);
        eprintln!(
            "[{canonical}] {} constraints; running setup/prove/verify …",
            cs.num_constraints()
        );
        let m = match store_budget {
            Some(budget) => measure_with_store(canonical, &cs, budget),
            None => measure(canonical, &cs),
        };
        report_row(&m);
        measured.push(m);
    }

    // --smoke also exercises the streaming pipeline end to end: the
    // heaviest quick row, chunked through an on-disk key store at a fixed
    // budget (this is the row the CI memory-cap lane and the schema-v3
    // peak-RSS gate key on)
    if smoke && store_budget.is_none() {
        let canonical = "cifar-cnn";
        eprintln!("[{canonical}] building circuit (streamed @ {SMOKE_BUDGET_MB} MB) …");
        let cs = build_row(canonical, scale);
        eprintln!(
            "[{canonical}] {} constraints; running streaming setup/prove/verify …",
            cs.num_constraints()
        );
        let m = measure_with_store(canonical, &cs, MemoryBudget::from_mb(SMOKE_BUDGET_MB));
        report_row(&m);
        measured.push(m);
    }
    println!("{}", format_table(&measured));

    // --json: pin the prover numbers in a machine-readable artifact (the
    // CI bench-smoke job uploads and validates this file)
    if args.iter().any(|a| a == "--json") {
        // amortized byte-level verification throughput (decode + pairing
        // per claim through `zkrownn_verify`) — the verify-side companion
        // to the per-row prover timings
        let vt = zkrownn_bench::measure_verify_throughput();
        eprintln!(
            "[verify] {:.1} claims/s ({:.3} ms/claim over {} iters, cold path)",
            vt.claims_per_s, vt.mean_ms, vt.iters
        );
        let path = "BENCH_prover.json";
        // temp-file + rename so an interrupted run never clobbers a prior
        // artifact with a half-written document
        zkrownn_store::write_file_atomic(
            std::path::Path::new(path),
            prover_json(&measured, scale, Some(&vt)).as_bytes(),
        )
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path} ({} rows)", measured.len());
    }
}
