//! `loadgen` — load generator for `zkrownn-service`, producer of
//! `BENCH_service.json`.
//!
//! Two modes:
//!
//! ```text
//! loadgen --write-corpus DIR [--mlp N] [--cnn N]
//!     run setup + proving once, write .vk/.claim files to DIR
//!
//! loadgen --corpus DIR [--addr HOST:PORT] [--smoke] [--json PATH]
//!     drive an authority with the corpus at 1/4/16 client threads
//!     (plus the batching-off ablation at 16) and emit the results;
//!     without --addr an in-process server is started
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use zkrownn::CircuitId;
use zkrownn_bench::service::{
    build_corpus, load_corpus, print_results, service_json, standard_scenarios, write_corpus,
    FULL_CLAIMS, SMOKE_CLAIMS,
};
use zkrownn_service::{serve, LedgeredRegistry, ServerConfig};

const USAGE: &str = "\
loadgen — zkrownn-service load generator

USAGE:
    loadgen --write-corpus DIR [--mlp N] [--cnn N]
    loadgen --corpus DIR [--addr HOST:PORT] [--smoke] [--json PATH]

OPTIONS:
    --write-corpus DIR   generate keys + claims into DIR and exit
    --mlp N              MLP claims in the generated corpus (default 4)
    --cnn N              CNN claims in the generated corpus (default 2)
    --corpus DIR         run load scenarios using the corpus in DIR
    --addr HOST:PORT     drive an already-running authority (default:
                         start an in-process server)
    --smoke              reduced claim counts (CI)
    --json PATH          write BENCH_service.json here (default: stdout
                         after the table)
    --help               print this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("loadgen: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut write_dir: Option<String> = None;
    let mut corpus_dir: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut smoke = false;
    let mut mlp = 4usize;
    let mut cnn = 2usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--write-corpus" => match value("--write-corpus") {
                Ok(v) => write_dir = Some(v),
                Err(e) => return fail(&e),
            },
            "--corpus" => match value("--corpus") {
                Ok(v) => corpus_dir = Some(v),
                Err(e) => return fail(&e),
            },
            "--addr" => match value("--addr") {
                Ok(v) => addr = Some(v),
                Err(e) => return fail(&e),
            },
            "--json" => match value("--json") {
                Ok(v) => json_path = Some(v),
                Err(e) => return fail(&e),
            },
            "--mlp" => match value("--mlp").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| "--mlp expects a number".into())
            }) {
                Ok(n) => mlp = n,
                Err(e) => return fail(&e),
            },
            "--cnn" => match value("--cnn").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| "--cnn expects a number".into())
            }) {
                Ok(n) => cnn = n,
                Err(e) => return fail(&e),
            },
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown option {other}")),
        }
    }

    if let Some(dir) = write_dir {
        if corpus_dir.is_some() {
            return fail("--write-corpus and --corpus are mutually exclusive");
        }
        eprintln!("loadgen: building corpus ({mlp} MLP + {cnn} CNN claims)...");
        let corpus = build_corpus(mlp, cnn);
        if let Err(e) = write_corpus(&corpus, std::path::Path::new(&dir)) {
            return fail(&format!("writing corpus to {dir}: {e}"));
        }
        eprintln!(
            "loadgen: wrote {} key(s) and {} claim(s) to {dir}",
            corpus.keys.len(),
            corpus.claims.len()
        );
        return ExitCode::SUCCESS;
    }

    let Some(dir) = corpus_dir else {
        return fail("one of --write-corpus or --corpus is required");
    };
    let corpus = match load_corpus(std::path::Path::new(&dir)) {
        Ok(c) => c,
        Err(e) => return fail(&format!("loading corpus from {dir}: {e}")),
    };
    eprintln!(
        "loadgen: corpus has {} circuit(s), {} claim(s)",
        corpus.keys.len(),
        corpus.claims.len()
    );

    // either an external authority, or an in-process one over the same keys
    let mut local = None;
    let target = match addr {
        Some(a) => a,
        None => {
            let registry = Arc::new(LedgeredRegistry::new());
            for (id, digest, vk) in &corpus.keys {
                registry.register(CircuitId::from_bytes(*id), *digest, vk);
            }
            let handle = match serve(ServerConfig::default(), registry) {
                Ok(h) => h,
                Err(e) => return fail(&format!("starting in-process server: {e}")),
            };
            let a = handle.addr().to_string();
            eprintln!("loadgen: in-process authority on {a}");
            local = Some(handle);
            a
        }
    };

    let total = if smoke { SMOKE_CLAIMS } else { FULL_CLAIMS };
    let results = match standard_scenarios(&target, &corpus, total) {
        Ok(r) => r,
        Err(e) => {
            if let Some(handle) = local {
                handle.shutdown_and_join();
            }
            return fail(&e);
        }
    };
    if let Some(handle) = local {
        handle.shutdown_and_join();
    }

    let mut stdout = std::io::stdout();
    if print_results(&mut stdout, &results).is_err() {
        return ExitCode::FAILURE;
    }
    let json = service_json(&results, smoke, corpus.claims.len());
    match json_path {
        Some(path) => {
            // temp-file + rename so an interrupted run never clobbers a
            // prior artifact with a half-written document
            if let Err(e) =
                zkrownn_store::write_file_atomic(std::path::Path::new(&path), json.as_bytes())
            {
                return fail(&format!("writing {path}: {e}"));
            }
            eprintln!("loadgen: wrote {path}");
        }
        None => print!("{json}"),
    }

    let any_errors = results.iter().any(|r| r.errors > 0);
    if any_errors {
        eprintln!("loadgen: some claims were rejected — corpus/server mismatch?");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
