//! # zkrownn-bench — the Table I / Table II benchmark harness
//!
//! Builders for every circuit row of the paper's Table I (seven standalone
//! gadget circuits plus the two end-to-end networks), a measurement harness
//! that reports the same seven metrics the paper does (constraints, setup
//! time, PK size, prover time, proof size, VK size, verifier time), and the
//! paper's reference numbers for side-by-side comparison.
//!
//! Instance/witness visibility follows the paper's observable choices: the
//! MatMult and Conv3D rows keep everything private (their reported VKs are
//! ~0.2 KB), ReLU/Average2D/Sigmoid/HardThresholding expose their outputs,
//! BER exposes only the verdict, and the end-to-end rows take the model
//! weights as public input.

#![warn(missing_docs)]

pub mod service;

use rand::SeedableRng;
use std::time::{Duration, Instant};
use zkrownn::benchmarks::{spec_from_keys, watermarked_cnn, watermarked_mlp, BenchmarkScale};
use zkrownn::ExtractionSpec;
use zkrownn_deepsigns::{embed, generate_keys, EmbedConfig, KeyGenConfig};
use zkrownn_ff::{Field, Fr, PrimeField};
use zkrownn_gadgets::average::average_rows;
use zkrownn_gadgets::conv::{conv3d, ConvShape};
use zkrownn_gadgets::matmul::{matmul, NumMatrix};
use zkrownn_gadgets::relu::relu_vec;
use zkrownn_gadgets::sigmoid::sigmoid_vec;
use zkrownn_gadgets::threshold::hard_threshold_vec;
use zkrownn_gadgets::{ber::ber_circuit, FixedConfig, Num};
use zkrownn_groth16::{create_proof_timed, verify_proof_prepared, SetupContext, ToxicWaste};
use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer, Network};
use zkrownn_r1cs::{Circuit, ConstraintSystem, ProvingSynthesizer, SynthesisError};
use zkrownn_store::{create_proof_streamed_timed, KeyStore, KeyStoreWriter, StoreBackend};

pub use zkrownn_curves::MemoryBudget;

/// Benchmark scale: the paper's exact dimensions, or reduced ones for
/// quick runs / CI.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Dimensions from the Table I caption.
    Paper,
    /// Reduced dimensions (same circuits, ~100× smaller).
    Quick,
}

/// One measured Table I row.
#[derive(Clone, Debug)]
pub struct RowMetrics {
    /// Row name (as in Table I).
    pub name: &'static str,
    /// Number of R1CS constraints.
    pub constraints: usize,
    /// FFT-domain size the prover interpolates over.
    pub domain_size: usize,
    /// Trusted-setup wall time.
    pub setup_time: Duration,
    /// The setup's scalar phase: QAP evaluation at `τ` and the derived
    /// scalar vectors.
    pub setup_qap_time: Duration,
    /// The setup's group phase: fixed-base table builds plus the
    /// batch-affine multiplications for every key family.
    pub setup_commit_time: Duration,
    /// Proving-key size in bytes.
    pub pk_bytes: usize,
    /// One-time context build (matrix lowering + twiddle tables) — shared
    /// by key generation and the prover via `SetupContext` →
    /// `ProverContext`, amortized across proofs in batch workloads.
    pub context_time: Duration,
    /// Prover wall time (witness map + MSMs + assembly, cached context).
    pub prove_time: Duration,
    /// The FFT-heavy quotient phase of the prover.
    pub witness_map_time: Duration,
    /// The multi-scalar-multiplication phase of the prover.
    pub msm_time: Duration,
    /// Proof size in bytes.
    pub proof_bytes: usize,
    /// Verifying-key size in bytes.
    pub vk_bytes: usize,
    /// Verifier wall time.
    pub verify_time: Duration,
    /// Peak resident-set size (`VmHWM`) observed across setup + prove +
    /// verify, in bytes. `0` when the platform exposes no high-water mark
    /// (non-Linux) or for the in-memory [`measure`] path, which predates
    /// the column.
    pub peak_rss_bytes: u64,
    /// Number of segments in the on-disk key store consumed by the
    /// streamed prover; `0` for the in-memory [`measure`] path.
    pub key_segments: usize,
}

/// The paper's reported numbers for a row (for side-by-side printing).
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// Row name.
    pub name: &'static str,
    /// Reported constraint count.
    pub constraints: u64,
    /// Reported setup seconds.
    pub setup_s: f64,
    /// Reported PK size (MB).
    pub pk_mb: f64,
    /// Reported prover seconds.
    pub prove_s: f64,
    /// Reported proof size (B).
    pub proof_b: f64,
    /// Reported VK size (KB).
    pub vk_kb: f64,
    /// Reported verifier milliseconds.
    pub verify_ms: f64,
}

/// Table I as printed in the paper.
pub const PAPER_TABLE1: [PaperRow; 9] = [
    PaperRow {
        name: "MatMult",
        constraints: 1_097_344,
        setup_s: 57.3976,
        pk_mb: 215.6518,
        prove_s: 18.6805,
        proof_b: 127.375,
        vk_kb: 0.199,
        verify_ms: 0.6,
    },
    PaperRow {
        name: "Conv3D",
        constraints: 235_899,
        setup_s: 13.3621,
        pk_mb: 46.3793,
        prove_s: 4.2081,
        proof_b: 127.375,
        vk_kb: 0.199,
        verify_ms: 0.6,
    },
    PaperRow {
        name: "ReLU",
        constraints: 8_832,
        setup_s: 0.6384,
        pk_mb: 1.7193,
        prove_s: 0.1907,
        proof_b: 127.375,
        vk_kb: 5.303,
        verify_ms: 0.7,
    },
    PaperRow {
        name: "Average2D",
        constraints: 545_793,
        setup_s: 29.6248,
        pk_mb: 107.3271,
        prove_s: 9.5570,
        proof_b: 127.375,
        vk_kb: 5.303,
        verify_ms: 0.6,
    },
    PaperRow {
        name: "Sigmoid",
        constraints: 454_656,
        setup_s: 34.4989,
        pk_mb: 90.5934,
        prove_s: 8.3680,
        proof_b: 127.375,
        vk_kb: 41.031,
        verify_ms: 0.8,
    },
    PaperRow {
        name: "HardThresholding",
        constraints: 8_704,
        setup_s: 0.624,
        pk_mb: 1.6978,
        prove_s: 0.1857,
        proof_b: 127.375,
        vk_kb: 5.303,
        verify_ms: 0.7,
    },
    PaperRow {
        name: "BER",
        constraints: 8_832,
        setup_s: 0.6423,
        pk_mb: 1.7527,
        prove_s: 0.1826,
        proof_b: 127.375,
        vk_kb: 0.2389,
        verify_ms: 0.6,
    },
    PaperRow {
        name: "MNIST-MLP",
        constraints: 2_093_648,
        setup_s: 68.4456,
        pk_mb: 280.3859,
        prove_s: 45.1208,
        proof_b: 127.375,
        vk_kb: 16_006.343,
        verify_ms: 29.4,
    },
    PaperRow {
        name: "CIFAR10-CNN",
        constraints: 590_624,
        setup_s: 32.35,
        pk_mb: 117.1699,
        prove_s: 11.22,
        proof_b: 127.375,
        vk_kb: 34.651,
        verify_ms: 1.0,
    },
];

/// All Table I row names, in paper order (keys for [`build_row`]).
pub const ROW_NAMES: [&str; 9] = [
    "matmult",
    "conv3d",
    "relu",
    "average2d",
    "sigmoid",
    "hardthreshold",
    "ber",
    "mnist-mlp",
    "cifar-cnn",
];

/// Bit-width used for the standalone integer circuits — chosen to mirror
/// the paper's apparent per-element cost (~69 constraints per ReLU element
/// suggests a 64-bit word size in their xJsnark circuits).
pub const STANDALONE_BITS: u32 = 64;

fn pseudo_entries(n: usize, modulus: i128, seed: i128) -> Vec<i128> {
    (0..n as i128)
        .map(|i| (i * 37 + seed) % modulus - modulus / 2)
        .collect()
}

/// A Table I row as a mode-agnostic circuit: one value synthesizable under
/// the setup, proving or counting driver (see [`row_circuit`]).
pub enum Table1Circuit {
    /// "MatMult": private `A, B ∈ ℤ^{d×d}`, private output.
    MatMult {
        /// Matrix dimension.
        d: usize,
    },
    /// "Conv3D": all-private valid convolution.
    Conv3d {
        /// Convolution geometry.
        shape: ConvShape,
    },
    /// "ReLU": private vector, public outputs.
    Relu {
        /// Vector length.
        n: usize,
    },
    /// "Average2D": private `n×n` matrix, public column means.
    Average2d {
        /// Matrix dimension.
        n: usize,
    },
    /// "Sigmoid": private vector through the degree-9 Chebyshev sigmoid.
    Sigmoid {
        /// Vector length.
        n: usize,
    },
    /// "HardThresholding": private vector, threshold 0.5, public bits.
    HardThreshold {
        /// Vector length.
        n: usize,
    },
    /// "BER": two private bit strings, public verdict.
    Ber {
        /// Bit-string length.
        n: usize,
    },
    /// An end-to-end extraction circuit ("mnist-mlp" / "cifar-cnn").
    Extraction(Box<ExtractionSpec>),
}

impl Circuit<Fr> for Table1Circuit {
    type Output = ();

    fn synthesize<CS: ConstraintSystem<Fr>>(&self, cs: &mut CS) -> Result<(), SynthesisError> {
        match self {
            Table1Circuit::MatMult { d } => {
                let d = *d;
                let a = NumMatrix::alloc_witness(cs, d, d, &pseudo_entries(d * d, 1000, 7), 16)?;
                let b = NumMatrix::alloc_witness(cs, d, d, &pseudo_entries(d * d, 1000, 13), 16)?;
                let _c = matmul(&a, &b, cs)?;
            }
            Table1Circuit::Conv3d { shape } => {
                let input: Vec<Num> = pseudo_entries(shape.in_len(), 500, 3)
                    .iter()
                    .map(|&v| Num::alloc_witness(cs, || Ok(Fr::from_i128(v)), 16))
                    .collect::<Result<_, _>>()?;
                let kernels: Vec<Num> = pseudo_entries(shape.kernel_len(), 500, 5)
                    .iter()
                    .map(|&v| Num::alloc_witness(cs, || Ok(Fr::from_i128(v)), 16))
                    .collect::<Result<_, _>>()?;
                let _out = conv3d(&input, &kernels, shape, cs)?;
            }
            Table1Circuit::Relu { n } => {
                let xs: Vec<Num> = pseudo_entries(*n, 1 << 20, 11)
                    .iter()
                    .map(|&v| Num::alloc_witness(cs, || Ok(Fr::from_i128(v)), STANDALONE_BITS))
                    .collect::<Result<_, _>>()?;
                for out in relu_vec(&xs, cs)? {
                    out.expose_as_output(cs)?;
                }
            }
            Table1Circuit::Average2d { n } => {
                let rows: Vec<Vec<Num>> = (0..*n)
                    .map(|r| {
                        pseudo_entries(*n, 1 << 20, r as i128)
                            .iter()
                            .map(|&v| {
                                Num::alloc_witness(cs, || Ok(Fr::from_i128(v)), STANDALONE_BITS)
                            })
                            .collect::<Result<_, _>>()
                    })
                    .collect::<Result<_, _>>()?;
                for out in average_rows(&rows, cs)? {
                    out.expose_as_output(cs)?;
                }
            }
            Table1Circuit::Sigmoid { n } => {
                let cfg = FixedConfig::default();
                let xs: Vec<Num> = (0..*n)
                    .map(|i| {
                        let x = (i as f64 / *n as f64) * 8.0 - 4.0;
                        Num::alloc_witness(
                            cs,
                            || Ok(Fr::from_i128(cfg.encode(x))),
                            cfg.value_bits(),
                        )
                    })
                    .collect::<Result<_, _>>()?;
                for out in sigmoid_vec(&xs, &cfg, cs)? {
                    out.expose_as_output(cs)?;
                }
            }
            Table1Circuit::HardThreshold { n } => {
                let cfg = FixedConfig::default();
                let xs: Vec<Num> = pseudo_entries(*n, 1 << 18, 17)
                    .iter()
                    .map(|&v| Num::alloc_witness(cs, || Ok(Fr::from_i128(v)), STANDALONE_BITS))
                    .collect::<Result<_, _>>()?;
                let beta = Fr::from_i128(1i128 << (cfg.frac_bits - 1));
                for out in hard_threshold_vec(&xs, beta, cs)? {
                    out.num.expose_as_output(cs)?;
                }
            }
            Table1Circuit::Ber { n } => {
                let wm: Vec<bool> = (0..*n).map(|i| i % 3 == 0).collect();
                let mut ex = wm.clone();
                ex[1] = !ex[1];
                let _ = ber_circuit(&wm, &ex, 2, cs)?;
            }
            Table1Circuit::Extraction(spec) => {
                let _ = spec.circuit().synthesize(cs)?;
            }
        }
        Ok(())
    }
}

fn vector_len(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 128,
        Scale::Quick => 16,
    }
}

/// The quick-scale end-to-end MLP extraction spec (same circuit shape as
/// the paper's MNIST-MLP row, reduced dimensions: 96 → 32, 8-bit wm) —
/// also the subject of the golden constraint-count regression test.
pub fn quick_mlp_spec() -> ExtractionSpec {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1001);
    let cfg = FixedConfig::default();
    let gmm = GmmConfig {
        input_shape: vec![96],
        num_classes: 10,
        mean_scale: 1.0,
        noise_std: 0.35,
    };
    let data = generate_gmm(&gmm, 200, &mut rng);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(96, 32, &mut rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(32, 10, &mut rng)),
    ]);
    net.train(&data.xs, &data.ys, 2, 0.02);
    let keys = generate_keys(
        &KeyGenConfig {
            layer: 1,
            activation_dim: 32,
            signature_bits: 8,
            num_triggers: 3,
            projection_std: 1.0 / (32f32).sqrt(),
        },
        &data,
        &mut rng,
    );
    embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
    spec_from_keys(&net, &keys, false, 1, &cfg)
}

/// The quick-scale end-to-end CNN extraction spec (watermark in the first
/// convolution layer, averaging folded into the projection) — also the
/// subject of the golden constraint-count regression test.
pub fn quick_cnn_spec() -> ExtractionSpec {
    use zkrownn_nn::Conv2d;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1002);
    let cfg = FixedConfig::default();
    let gmm = GmmConfig {
        input_shape: vec![3, 16, 16],
        num_classes: 4,
        mean_scale: 1.0,
        noise_std: 0.35,
    };
    let data = generate_gmm(&gmm, 120, &mut rng);
    let mut net = Network::new(vec![
        Layer::Conv2d(Conv2d::new(3, 8, 3, 2, &mut rng)),
        Layer::ReLU,
        Layer::Flatten,
        Layer::Dense(Dense::new(8 * 7 * 7, 4, &mut rng)),
    ]);
    net.train(&data.xs, &data.ys, 2, 0.01);
    let keys = generate_keys(
        &KeyGenConfig {
            layer: 0,
            activation_dim: 8 * 7 * 7,
            signature_bits: 8,
            num_triggers: 2,
            projection_std: 1.0 / (8f32 * 49.0).sqrt(),
        },
        &data,
        &mut rng,
    );
    embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
    spec_from_keys(&net, &keys, true, 1, &cfg)
}

/// Builds a Table I row as a mode-agnostic [`Table1Circuit`] by name (see
/// [`ROW_NAMES`]). The end-to-end rows train and watermark their model
/// here, so the returned value can be synthesized repeatedly (setup, then
/// prove, then count) without repeating that work.
///
/// # Panics
/// Panics on an unknown row name.
pub fn row_circuit(name: &str, scale: Scale) -> Table1Circuit {
    match name {
        "matmult" => Table1Circuit::MatMult {
            d: match scale {
                Scale::Paper => 128,
                Scale::Quick => 16,
            },
        },
        "conv3d" => Table1Circuit::Conv3d {
            shape: match scale {
                Scale::Paper => ConvShape {
                    in_channels: 3,
                    height: 32,
                    width: 32,
                    out_channels: 32,
                    kernel: 3,
                    stride: 2,
                },
                Scale::Quick => ConvShape {
                    in_channels: 3,
                    height: 8,
                    width: 8,
                    out_channels: 4,
                    kernel: 3,
                    stride: 2,
                },
            },
        },
        "relu" => Table1Circuit::Relu {
            n: vector_len(scale),
        },
        "average2d" => Table1Circuit::Average2d {
            n: vector_len(scale),
        },
        "sigmoid" => Table1Circuit::Sigmoid {
            n: vector_len(scale),
        },
        "hardthreshold" => Table1Circuit::HardThreshold {
            n: vector_len(scale),
        },
        "ber" => Table1Circuit::Ber {
            n: vector_len(scale),
        },
        "mnist-mlp" => Table1Circuit::Extraction(Box::new(match scale {
            Scale::Paper => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1001);
                let cfg = FixedConfig::default();
                let bench = watermarked_mlp(&BenchmarkScale::paper(), &mut rng);
                spec_from_keys(&bench.net, &bench.keys, false, 1, &cfg)
            }
            Scale::Quick => quick_mlp_spec(),
        })),
        "cifar-cnn" => Table1Circuit::Extraction(Box::new(match scale {
            Scale::Paper => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1002);
                let cfg = FixedConfig::default();
                let mut paper = BenchmarkScale::paper();
                paper.num_triggers = 3; // conv activation maps are large
                let bench = watermarked_cnn(&paper, &mut rng);
                spec_from_keys(&bench.net, &bench.keys, true, 1, &cfg)
            }
            Scale::Quick => quick_cnn_spec(),
        })),
        other => panic!("unknown Table I row {other:?}"),
    }
}

/// Builds a Table I row circuit by name and synthesizes it in proving mode
/// (the form the measurement harness and benches consume).
///
/// # Panics
/// Panics on an unknown row name.
pub fn build_row(name: &str, scale: Scale) -> ProvingSynthesizer<Fr> {
    let circuit = row_circuit(name, scale);
    let mut cs = ProvingSynthesizer::new();
    circuit
        .synthesize(&mut cs)
        .expect("benchmark circuits carry their witness");
    cs
}

/// The paper's reference metrics for a row name, if recorded.
pub fn paper_reference(name: &str) -> Option<&'static PaperRow> {
    let canonical = match name.to_lowercase().as_str() {
        "matmult" => "MatMult",
        "conv3d" => "Conv3D",
        "relu" => "ReLU",
        "average2d" => "Average2D",
        "sigmoid" => "Sigmoid",
        "hardthresholding" | "hardthreshold" => "HardThresholding",
        "ber" => "BER",
        "mnist-mlp" => "MNIST-MLP",
        "cifar10-cnn" | "cifar-cnn" => "CIFAR10-CNN",
        _ => return None,
    };
    PAPER_TABLE1.iter().find(|r| r.name == canonical)
}

/// Runs setup → prove → verify over a synthesized circuit and measures all
/// seven Table I metrics plus the setup phase breakdown (QAP scalars /
/// group commitments) and the prover phase breakdown (context build /
/// witness map / MSMs).
pub fn measure(name: &'static str, cs: &ProvingSynthesizer<Fr>) -> RowMetrics {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xbe9c);
    assert!(cs.is_satisfied().is_ok(), "{name}: unsatisfied circuit");

    // the one-time cost both roles share: matrix lowering + domain
    // construction with its twiddle/coset tables (`SetupContext` hands the
    // same lowering to the prover below, mirroring `Authority::setup`)
    let t = Instant::now();
    let setup_ctx = SetupContext::new(cs.to_matrices());
    let context_time = t.elapsed();

    let toxic = ToxicWaste::sample(&mut rng);
    let t = Instant::now();
    let (pk, setup_timings) = setup_ctx.generate_timed(&toxic);
    let setup_time = t.elapsed();
    let ctx = setup_ctx.into_prover_context();

    let z = cs.full_assignment();
    let r = Fr::random(&mut rng);
    let s = Fr::random(&mut rng);
    let (proof, timings) = create_proof_timed(&pk, &ctx, &z, r, s);

    let publics: Vec<Fr> = cs.instance_assignment()[1..].to_vec();
    let pvk = pk.vk.prepare();
    let t = Instant::now();
    verify_proof_prepared(&pvk, &proof, &publics).expect("proof must verify");
    let verify_time = t.elapsed();

    RowMetrics {
        name,
        constraints: cs.num_constraints(),
        domain_size: ctx.domain().size,
        setup_time,
        setup_qap_time: setup_timings.qap_eval,
        setup_commit_time: setup_timings.commit,
        pk_bytes: pk.serialized_size(),
        context_time,
        prove_time: timings.total,
        witness_map_time: timings.witness_map,
        msm_time: timings.msm,
        proof_bytes: proof.to_bytes().len(),
        vk_bytes: pk.vk.serialized_size(),
        verify_time,
        peak_rss_bytes: 0,
        key_segments: 0,
    }
}

/// Resets the kernel's peak-RSS high-water mark for this process, so the
/// next [`peak_rss_bytes`] reading covers only work done after the reset.
/// Best-effort: a no-op where `/proc/self/clear_refs` is unavailable.
pub fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// The process's peak resident-set size (`VmHWM`) in bytes, or `0` where
/// `/proc/self/status` is unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// [`measure`]'s store-backed twin: runs the *streaming* pipeline end to
/// end — keygen chunked under `budget` straight into an on-disk `.zkst`
/// key store, then the segment-aware prover consuming base chunks from
/// that store at the same budget — and reports the usual Table I metrics
/// plus the peak-RSS and key-segment columns.
///
/// The proving key is never materialized in memory: `pk_bytes` reports the
/// on-disk store size, and the store is read through the buffered backend
/// so the footprint stays honest even under an address-space cap (mmap
/// would count the whole file against `ulimit -v`).
///
/// # Panics
/// Panics on an unsatisfied circuit, on store I/O failures, or if the
/// streamed proof fails to verify.
pub fn measure_with_store(
    name: &'static str,
    cs: &ProvingSynthesizer<Fr>,
    budget: MemoryBudget,
) -> RowMetrics {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xbe9c);
    assert!(cs.is_satisfied().is_ok(), "{name}: unsatisfied circuit");
    let store_path =
        std::env::temp_dir().join(format!("zkrownn-bench-{}-{name}.zkst", std::process::id()));

    reset_peak_rss();
    let t = Instant::now();
    let setup_ctx = SetupContext::new(cs.to_matrices());
    let context_time = t.elapsed();

    let toxic = ToxicWaste::sample(&mut rng);
    let t = Instant::now();
    let mut sink = KeyStoreWriter::create(&store_path, None)
        .unwrap_or_else(|e| panic!("{name}: creating key store: {e}"));
    let setup_timings = setup_ctx
        .generate_streaming_with(&toxic, &mut sink, budget)
        .unwrap_or_else(|e| panic!("{name}: streaming keygen: {e}"));
    sink.finish()
        .unwrap_or_else(|e| panic!("{name}: finishing key store: {e}"));
    let setup_time = t.elapsed();
    let ctx = setup_ctx.into_prover_context();

    let store = KeyStore::open_with(&store_path, StoreBackend::Buffered)
        .unwrap_or_else(|e| panic!("{name}: opening key store: {e}"));
    let z = cs.full_assignment();
    let r = Fr::random(&mut rng);
    let s = Fr::random(&mut rng);
    let (proof, timings) = create_proof_streamed_timed(&store, &ctx, &z, r, s, budget)
        .unwrap_or_else(|e| panic!("{name}: streamed prover: {e}"));

    let publics: Vec<Fr> = cs.instance_assignment()[1..].to_vec();
    let vk = store
        .verifying_key()
        .unwrap_or_else(|e| panic!("{name}: reading vk from store: {e}"));
    let pvk = vk.prepare();
    let t = Instant::now();
    verify_proof_prepared(&pvk, &proof, &publics).expect("streamed proof must verify");
    let verify_time = t.elapsed();

    let metrics = RowMetrics {
        name,
        constraints: cs.num_constraints(),
        domain_size: ctx.domain().size,
        setup_time,
        setup_qap_time: setup_timings.qap_eval,
        setup_commit_time: setup_timings.commit,
        pk_bytes: store.file().file_len() as usize,
        context_time,
        prove_time: timings.total,
        witness_map_time: timings.witness_map,
        msm_time: timings.msm,
        proof_bytes: proof.to_bytes().len(),
        vk_bytes: vk.serialized_size(),
        verify_time,
        peak_rss_bytes: peak_rss_bytes(),
        key_segments: store.segment_count(),
    };
    drop(store);
    let _ = std::fs::remove_file(&store_path);
    metrics
}

/// Sustained verification throughput through the byte-level
/// [`zkrownn_verifier::zkrownn_verify`] entry point — the full
/// envelope-decode → statement-synthesis → pairing path a cold verifier
/// (wasm page, enclave, contract host) pays per claim, with no key or
/// preparation cached across calls.
#[derive(Clone, Copy, Debug)]
pub struct VerifyThroughput {
    /// Full byte-level verifications per second.
    pub claims_per_s: f64,
    /// Mean wall time per verification, in milliseconds.
    pub mean_ms: f64,
    /// Number of verifications timed.
    pub iters: u32,
}

/// Measures [`VerifyThroughput`] on a small deterministic claim: setup and
/// prove once, serialize the three dispute artifacts, then time repeated
/// `zkrownn_verify` calls over the raw bytes.
pub fn measure_verify_throughput() -> VerifyThroughput {
    let cfg = FixedConfig::default();
    let spec = ExtractionSpec {
        model: zkrownn::QuantizedModel {
            layers: vec![
                zkrownn::QuantLayer::Dense {
                    in_dim: 2,
                    out_dim: 2,
                    w: vec![cfg.encode(0.5); 4],
                    b: vec![0; 2],
                },
                zkrownn::QuantLayer::ReLU,
            ],
            input_len: 2,
            cfg,
        },
        triggers: vec![vec![cfg.encode(1.0); 2]],
        projection: vec![cfg.encode(0.25); 4],
        signature: vec![true, false],
        max_errors: 2,
        fold_average: false,
        cfg,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let (prover, verifier) = zkrownn::Authority::setup(&spec, &mut rng);
    let claim = prover.prove(&mut rng).expect("honest spec proves");
    use zkrownn::Artifact;
    let vk_bytes = Artifact::to_bytes(verifier.verifying_key());
    let statement_bytes = Artifact::to_bytes(&spec.statement());
    let claim_bytes = Artifact::to_bytes(&claim);

    let run = |iters: u32| {
        let t = Instant::now();
        for _ in 0..iters {
            zkrownn_verifier::zkrownn_verify(&vk_bytes, &statement_bytes, &claim_bytes)
                .expect("honest claim verifies");
        }
        t.elapsed()
    };
    run(3); // warm the instruction cache and the allocator
    let iters = 64u32;
    let elapsed = run(iters);
    let mean = elapsed.as_secs_f64() / iters as f64;
    VerifyThroughput {
        claims_per_s: 1.0 / mean,
        mean_ms: mean * 1e3,
        iters,
    }
}

/// Serializes measured rows as the `BENCH_prover.json` document: schema
/// tag, environment (thread count), and one object per row with seconds as
/// floats. Hand-rolled writer (the workspace is offline — no serde), but
/// strictly valid JSON: names are ASCII identifiers, numbers finite.
///
/// Schema `v2` added the trusted-setup phase breakdown
/// (`setup_qap_s` / `setup_commit_s`) alongside `setup_s`; schema `v3`
/// added the streaming-store columns (`peak_rss_bytes` / `key_segments`),
/// both `0` for rows measured through the in-memory path, and later grew
/// the optional top-level `verify` object (byte-level verification
/// throughput through `zkrownn_verify`) — additive, so v3 consumers that
/// only read `rows` are unaffected.
pub fn prover_json(rows: &[RowMetrics], scale: Scale, verify: Option<&VerifyThroughput>) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"zkrownn-bench-prover/v3\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    ));
    out.push_str(&format!(
        "  \"threads\": {},\n",
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    ));
    if let Some(v) = verify {
        out.push_str(&format!(
            "  \"verify\": {{\"entrypoint\": \"zkrownn_verify\", \
             \"claims_per_s\": {:.2}, \"mean_ms\": {:.4}, \"iters\": {}}},\n",
            v.claims_per_s, v.mean_ms, v.iters
        ));
    }
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"constraints\": {}, \"domain_size\": {}, \
             \"setup_s\": {:.6}, \"setup_qap_s\": {:.6}, \"setup_commit_s\": {:.6}, \
             \"context_s\": {:.6}, \"prove_s\": {:.6}, \
             \"witness_map_s\": {:.6}, \"msm_s\": {:.6}, \"verify_s\": {:.6}, \
             \"pk_bytes\": {}, \"vk_bytes\": {}, \"proof_bytes\": {}, \
             \"peak_rss_bytes\": {}, \"key_segments\": {}}}{}\n",
            r.name,
            r.constraints,
            r.domain_size,
            r.setup_time.as_secs_f64(),
            r.setup_qap_time.as_secs_f64(),
            r.setup_commit_time.as_secs_f64(),
            r.context_time.as_secs_f64(),
            r.prove_time.as_secs_f64(),
            r.witness_map_time.as_secs_f64(),
            r.msm_time.as_secs_f64(),
            r.verify_time.as_secs_f64(),
            r.pk_bytes,
            r.vk_bytes,
            r.proof_bytes,
            r.peak_rss_bytes,
            r.key_segments,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Formats measured rows (with the paper's numbers interleaved) as a
/// markdown table.
pub fn format_table(rows: &[RowMetrics]) -> String {
    let mut out = String::new();
    out.push_str(
        "| Benchmark | Constraints | Setup (s) | PK (MB) | Prove (s) | Proof (B) | VK (KB) | Verify (ms) |\n",
    );
    out.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} (ours) | {} | {:.3} | {:.2} | {:.3} | {} | {:.3} | {:.2} |\n",
            r.name,
            r.constraints,
            r.setup_time.as_secs_f64(),
            r.pk_bytes as f64 / 1e6,
            r.prove_time.as_secs_f64(),
            r.proof_bytes,
            r.vk_bytes as f64 / 1e3,
            r.verify_time.as_secs_f64() * 1e3,
        ));
        if let Some(p) = paper_reference(r.name) {
            out.push_str(&format!(
                "| {} (paper) | {} | {:.3} | {:.2} | {:.3} | 127 | {:.3} | {:.2} |\n",
                p.name, p.constraints, p.setup_s, p.pk_mb, p.prove_s, p.vk_kb, p.verify_ms
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_rows_all_build_and_satisfy() {
        for name in ROW_NAMES {
            let cs = build_row(name, Scale::Quick);
            assert!(cs.is_satisfied().is_ok(), "row {name}");
            assert!(cs.num_constraints() > 0, "row {name}");
        }
    }

    #[test]
    fn quick_rows_setup_mode_agrees_with_proving_mode() {
        use zkrownn_r1cs::SetupSynthesizer;
        for name in ["ber", "relu", "hardthreshold"] {
            let circuit = row_circuit(name, Scale::Quick);
            let mut setup = SetupSynthesizer::<Fr>::new();
            circuit.synthesize(&mut setup).unwrap();
            let cs = build_row(name, Scale::Quick);
            assert_eq!(setup.num_constraints(), cs.num_constraints(), "row {name}");
            assert_eq!(
                setup.num_witness_variables(),
                cs.num_witness_variables(),
                "row {name}"
            );
        }
    }

    #[test]
    fn quick_relu_row_measures_end_to_end() {
        let cs = build_row("relu", Scale::Quick);
        let m = measure("ReLU", &cs);
        assert_eq!(m.proof_bytes, 128);
        assert!(m.verify_time.as_secs_f64() < 1.0);
    }

    #[test]
    fn store_backed_measure_matches_in_memory_row() {
        let cs = build_row("ber", Scale::Quick);
        let streamed = measure_with_store("ber", &cs, MemoryBudget::from_mb(4));
        assert_eq!(streamed.proof_bytes, 128);
        assert_eq!(streamed.constraints, cs.num_constraints());
        // constants + IC + the six proving-key families (no META: the
        // bench store is not circuit-bound)
        assert!(
            streamed.key_segments >= 7,
            "expected a fully segmented key store, got {} segments",
            streamed.key_segments
        );
        // the on-disk key is real (container overhead over an empty file)
        assert!(streamed.pk_bytes > 1024);
        if cfg!(target_os = "linux") {
            assert!(streamed.peak_rss_bytes > 0, "VmHWM should be readable");
        }
    }

    #[test]
    fn paper_reference_lookup() {
        assert_eq!(paper_reference("matmult").unwrap().constraints, 1_097_344);
        assert_eq!(paper_reference("MatMult").unwrap().constraints, 1_097_344);
        assert!(paper_reference("nope").is_none());
    }

    #[test]
    fn paper_scale_conv_geometry_matches_caption() {
        let shape = ConvShape {
            in_channels: 3,
            height: 32,
            width: 32,
            out_channels: 32,
            kernel: 3,
            stride: 2,
        };
        assert_eq!(shape.out_len(), 32 * 15 * 15);
    }

    #[test]
    fn format_table_contains_paper_rows() {
        let cs = build_row("ber", Scale::Quick);
        let m = measure("BER", &cs);
        let table = format_table(&[m]);
        assert!(table.contains("BER (ours)"));
        assert!(table.contains("BER (paper)"));
    }

    #[test]
    fn prover_json_is_well_formed() {
        let cs = build_row("ber", Scale::Quick);
        let m = measure("ber", &cs);
        assert!(m.witness_map_time + m.msm_time <= m.prove_time);
        assert!(m.setup_qap_time + m.setup_commit_time <= m.setup_time);
        assert!(m.domain_size.is_power_of_two());
        let vt = VerifyThroughput {
            claims_per_s: 412.5,
            mean_ms: 2.4242,
            iters: 64,
        };
        let json = prover_json(&[m.clone(), m], Scale::Quick, Some(&vt));
        // structural sanity without a JSON parser: balanced braces/brackets,
        // both rows present, schema tag, comma between rows but not after
        // the last
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches("\"name\": \"ber\"").count(), 2);
        assert!(json.contains("\"schema\": \"zkrownn-bench-prover/v3\""));
        assert!(json.contains("\"setup_qap_s\""));
        assert!(json.contains("\"setup_commit_s\""));
        assert!(json.contains("\"peak_rss_bytes\""));
        assert!(json.contains("\"key_segments\""));
        assert!(json.contains("\"scale\": \"quick\""));
        assert!(json.contains("\"verify\": {\"entrypoint\": \"zkrownn_verify\""));
        assert!(json.contains("\"claims_per_s\": 412.50"));
        // without the measurement the document stays pure v3
        assert!(!prover_json(&[], Scale::Quick, None).contains("\"verify\""));
        assert!(json.contains("},\n"));
        assert!(json.trim_end().ends_with("]\n}"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }
}
