//! A model-theft dispute, end to end — the legal-setting scenario that
//! motivates the paper (§I): proofs must be *non-interactive* and
//! *publicly verifiable* so an expert witness or court can check ownership
//! claims without learning the watermark secrets.
//!
//! Cast: **Olivia** (owner), **Mallory** (thief), **Vera** (arbiter).
//! Vera receives both parties' claims as wire bytes and settles the dispute
//! with one batch verification — the error taxonomy does the judging:
//! Olivia's claim verifies, Mallory's comes back `NegativeVerdict` (her
//! proof is sound, but it proves her "watermark" is *absent*).
//!
//! ```text
//! cargo run --release --example dispute_resolution
//! ```

use rand::SeedableRng;
use zkrownn::benchmarks::spec_from_keys;
use zkrownn::{Artifact, Authority, KeyRegistry, SignedClaim, ZkrownnError};
use zkrownn_deepsigns::attacks::{finetune, prune};
use zkrownn_deepsigns::{embed, extract, generate_keys, EmbedConfig, KeyGenConfig};
use zkrownn_gadgets::FixedConfig;
use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer, Network};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);

    // --- Act 1: Olivia trains and watermarks her model -------------------
    println!("― Act 1 ― Olivia trains a model and embeds her watermark");
    let gmm = GmmConfig {
        input_shape: vec![20],
        num_classes: 4,
        mean_scale: 1.0,
        noise_std: 0.3,
    };
    let data = generate_gmm(&gmm, 160, &mut rng);
    let mut olivia_model = Network::new(vec![
        Layer::Dense(Dense::new(20, 32, &mut rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(32, 4, &mut rng)),
    ]);
    olivia_model.train(&data.xs, &data.ys, 6, 0.05);
    let olivia_keys = generate_keys(
        &KeyGenConfig {
            layer: 1,
            activation_dim: 32,
            signature_bits: 12,
            num_triggers: 6,
            projection_std: 1.0,
        },
        &data,
        &mut rng,
    );
    embed(
        &mut olivia_model,
        &olivia_keys,
        &data.xs,
        &data.ys,
        &EmbedConfig {
            lambda: 5.0,
            epochs: 30,
            lr: 0.01,
        },
    );
    let (_, ber) = extract(&olivia_model, &olivia_keys);
    println!("  watermark BER on her own model: {ber:.3}");

    // --- Act 2: Mallory steals and modifies the model --------------------
    println!("― Act 2 ― Mallory steals the model, fine-tunes it and prunes 15%");
    let mut stolen = olivia_model.clone();
    finetune(&mut stolen, &data.xs, &data.ys, 3, 0.01);
    prune(&mut stolen, 0.15);
    let (_, stolen_ber) = extract(&stolen, &olivia_keys);
    println!("  Olivia's watermark BER on the stolen model M': {stolen_ber:.3}");

    // --- Act 3: both parties file claims about M' ------------------------
    println!("― Act 3 ― both parties generate claims over M' and send Vera the bytes");
    let theta_errors = 2; // tolerate small attack damage
    let olivia_spec = spec_from_keys(
        &stolen,
        &olivia_keys,
        false,
        theta_errors,
        &FixedConfig::default(),
    );
    // one circuit shape ⇒ one setup: Mallory's counterclaim uses keys with
    // the same dimensions, so both claims land on the same CircuitId
    let (olivia_prover, verifier_kit) = Authority::setup(&olivia_spec, &mut rng);
    let olivia_claim = olivia_prover.prove(&mut rng).expect("Olivia's claim");
    println!(
        "  Olivia's claim: {} bytes, verdict = {}",
        olivia_claim.to_bytes().len(),
        olivia_claim.verdict()
    );

    // --- Act 4: Mallory counterclaims with made-up keys -------------------
    println!("― Act 4 ― Mallory counterclaims with keys she invents after the fact");
    let mallory_keys = generate_keys(
        &KeyGenConfig {
            layer: 1,
            activation_dim: 32,
            signature_bits: 12,
            num_triggers: 6,
            projection_std: 1.0,
        },
        &data,
        &mut rng,
    );
    let (_, mallory_ber) = extract(&stolen, &mallory_keys);
    println!("  Mallory's 'watermark' BER: {mallory_ber:.3} (random keys don't extract)");
    let mallory_spec = spec_from_keys(
        &stolen,
        &mallory_keys,
        false,
        theta_errors,
        &FixedConfig::default(),
    );
    assert_eq!(
        mallory_spec.circuit_id(),
        olivia_spec.circuit_id(),
        "same shape, same circuit"
    );
    let mallory_prover =
        zkrownn::ProverKit::from_parts(olivia_prover.proving_key().clone(), mallory_spec);
    let mallory_claim = mallory_prover.prove(&mut rng).expect("provable, verdict 0");
    println!(
        "  Mallory's claim: verdict = {} — the circuit is sound, she cannot lie",
        mallory_claim.verdict()
    );

    // --- Act 5: Vera batch-verifies both claims from wire bytes ----------
    println!("― Act 5 ― Vera reconstructs both claims from bytes and batch-verifies");
    let wires: Vec<Vec<u8>> = [&olivia_claim, &mallory_claim]
        .iter()
        .map(|c| c.to_bytes())
        .collect();
    let claims: Vec<SignedClaim> = wires
        .iter()
        .map(|w| SignedClaim::from_bytes(w).expect("claims decode"))
        .collect();
    // Vera first pins every claim to the model actually under dispute: a
    // cryptographically sound claim about some *other* model proves nothing
    // about M'. (The kit carries the disputed statement's digest.)
    let disputed = verifier_kit.expected_statement().expect("kit is bound");
    for claim in &claims {
        assert_eq!(
            claim.statement.content_digest(),
            disputed,
            "claim must be about the disputed model M'"
        );
    }
    let mut registry = KeyRegistry::new();
    registry.register_kit(&verifier_kit);
    let verdicts = registry.verify_batch(&claims, &mut rng);
    for (who, verdict) in ["Olivia", "Mallory"].iter().zip(&verdicts) {
        match verdict {
            Ok(()) => println!("  Vera: {who}'s claim VERIFIES — M' carries their watermark ✔"),
            Err(ZkrownnError::NegativeVerdict) => println!(
                "  Vera: {who}'s claim is sound but NEGATIVE — their watermark is \
                 not in M' ✘"
            ),
            Err(e) => println!("  Vera: {who}'s claim rejected ({e})"),
        }
    }
    assert!(verdicts[0].is_ok());
    assert_eq!(verdicts[1], Err(ZkrownnError::NegativeVerdict));
    println!("  dispute resolved for Olivia ✔");
}
