//! A model-theft dispute, end to end — the legal-setting scenario that
//! motivates the paper (§I): proofs must be *non-interactive* and
//! *publicly verifiable* so an expert witness or court can check ownership
//! claims without learning the watermark secrets.
//!
//! Cast: **Olivia** (owner), **Mallory** (thief), **Vera** (arbiter).
//!
//! ```text
//! cargo run --release --example dispute_resolution
//! ```

use rand::SeedableRng;
use zkrownn::benchmarks::spec_from_keys;
use zkrownn::{prove, setup, verify};
use zkrownn_deepsigns::attacks::{finetune, prune};
use zkrownn_deepsigns::{embed, extract, generate_keys, EmbedConfig, KeyGenConfig};
use zkrownn_gadgets::FixedConfig;
use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer, Network};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);

    // --- Act 1: Olivia trains and watermarks her model -------------------
    println!("― Act 1 ― Olivia trains a model and embeds her watermark");
    let gmm = GmmConfig {
        input_shape: vec![20],
        num_classes: 4,
        mean_scale: 1.0,
        noise_std: 0.3,
    };
    let data = generate_gmm(&gmm, 160, &mut rng);
    let mut olivia_model = Network::new(vec![
        Layer::Dense(Dense::new(20, 32, &mut rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(32, 4, &mut rng)),
    ]);
    olivia_model.train(&data.xs, &data.ys, 6, 0.05);
    let olivia_keys = generate_keys(
        &KeyGenConfig {
            layer: 1,
            activation_dim: 32,
            signature_bits: 12,
            num_triggers: 6,
            projection_std: 1.0,
        },
        &data,
        &mut rng,
    );
    embed(
        &mut olivia_model,
        &olivia_keys,
        &data.xs,
        &data.ys,
        &EmbedConfig {
            lambda: 5.0,
            epochs: 30,
            lr: 0.01,
        },
    );
    let (_, ber) = extract(&olivia_model, &olivia_keys);
    println!("  watermark BER on her own model: {ber:.3}");

    // --- Act 2: Mallory steals and modifies the model --------------------
    println!("― Act 2 ― Mallory steals the model, fine-tunes it and prunes 15%");
    let mut stolen = olivia_model.clone();
    finetune(&mut stolen, &data.xs, &data.ys, 3, 0.01);
    prune(&mut stolen, 0.15);
    let (_, stolen_ber) = extract(&stolen, &olivia_keys);
    println!("  Olivia's watermark BER on the stolen model M': {stolen_ber:.3}");

    // --- Act 3: Olivia proves ownership of M' to Vera --------------------
    println!("― Act 3 ― Olivia proves ownership of M' without revealing her keys");
    let theta_errors = 2; // tolerate small attack damage
    let spec = spec_from_keys(
        &stolen,
        &olivia_keys,
        false,
        theta_errors,
        &FixedConfig::default(),
    );
    let pk = setup(&spec, &mut rng); // run once by a trusted third party
    let proof = prove(&pk, &spec, &mut rng).expect("Olivia's proof");
    println!(
        "  proof generated: {} bytes, verdict = {}",
        proof.proof.to_bytes().len(),
        proof.verdict
    );
    match verify(&pk.vk, &spec, &proof) {
        Ok(()) => println!("  Vera: proof VERIFIES — M' carries Olivia's watermark ✔"),
        Err(e) => println!("  Vera: proof rejected ({e})"),
    }

    // --- Act 4: Mallory counterclaims with made-up keys -------------------
    println!("― Act 4 ― Mallory counterclaims with keys she invents after the fact");
    let mallory_keys = generate_keys(
        &KeyGenConfig {
            layer: 1,
            activation_dim: 32,
            signature_bits: 12,
            num_triggers: 6,
            projection_std: 1.0,
        },
        &data,
        &mut rng,
    );
    let (_, mallory_ber) = extract(&stolen, &mallory_keys);
    println!("  Mallory's 'watermark' BER: {mallory_ber:.3} (random keys don't extract)");
    let mallory_spec = spec_from_keys(
        &stolen,
        &mallory_keys,
        false,
        theta_errors,
        &FixedConfig::default(),
    );
    let mallory_pk = setup(&mallory_spec, &mut rng);
    let mallory_proof = prove(&mallory_pk, &mallory_spec, &mut rng).expect("provable, verdict 0");
    println!(
        "  Mallory's proof verdict = {} — the circuit is sound, she cannot lie",
        mallory_proof.verdict
    );
    match verify(&mallory_pk.vk, &mallory_spec, &mallory_proof) {
        Ok(()) => println!("  Vera: Mallory's claim verifies?! (should never happen)"),
        Err(_) => println!("  Vera: Mallory's claim REJECTED ✔ — dispute resolved for Olivia"),
    }
}
