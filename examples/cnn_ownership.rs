//! The paper's CIFAR10-CNN scenario: the watermark lives in the first
//! convolution layer's activation maps; the extraction circuit is
//! convolution-dominated and uses the fold-the-average optimization.
//!
//! ```text
//! cargo run --release --example cnn_ownership            # scaled-down (fast)
//! cargo run --release --example cnn_ownership -- --paper # full Table II CNN
//! ```

use rand::SeedableRng;
use std::time::Instant;
use zkrownn::benchmarks::{spec_from_keys, watermarked_cnn, BenchmarkScale};
use zkrownn::{Artifact, Authority, SignedClaim};
use zkrownn_deepsigns::{embed, extract, generate_keys, EmbedConfig, KeyGenConfig};
use zkrownn_gadgets::FixedConfig;
use zkrownn_nn::{generate_gmm, Conv2d, GmmConfig, Layer, Network};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let cfg = FixedConfig::default();

    let spec = if paper_scale {
        println!("building the FULL Table II CNN (C(32,3,2) head on 3×32×32) …");
        let bench = watermarked_cnn(&BenchmarkScale::paper(), &mut rng);
        println!("  watermark embedded: BER = {:.3}", bench.embed_ber);
        // fold the 1/T average into the projection: the 7200-dimensional
        // activation map would otherwise need 7200 division gadgets
        spec_from_keys(&bench.net, &bench.keys, true, 1, &cfg)
    } else {
        println!("building a scaled-down CNN (C(8,3,2) on 3×16×16) — pass --paper for full size");
        let gmm = GmmConfig {
            input_shape: vec![3, 16, 16],
            num_classes: 4,
            mean_scale: 1.0,
            noise_std: 0.35,
        };
        let data = generate_gmm(&gmm, 160, &mut rng);
        let mut net = Network::new(vec![
            Layer::Conv2d(Conv2d::new(3, 8, 3, 2, &mut rng)), // 8×7×7 maps
            Layer::ReLU,
            Layer::Flatten,
            Layer::Dense(zkrownn_nn::Dense::new(8 * 7 * 7, 4, &mut rng)),
        ]);
        net.train(&data.xs, &data.ys, 3, 0.01);
        let keys = generate_keys(
            &KeyGenConfig {
                layer: 0, // conv output activation maps
                activation_dim: 8 * 7 * 7,
                signature_bits: 8,
                num_triggers: 2,
                // normalized: keeps |µ·A| inside the sigmoid input range
                projection_std: 1.0 / (8f32 * 7.0 * 7.0).sqrt(),
            },
            &data,
            &mut rng,
        );
        let report = embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
        let (_, ber) = extract(&net, &keys);
        println!(
            "  watermark embedded: BER = {ber:.3} (loss {:.4})",
            report.wm_loss
        );
        spec_from_keys(&net, &keys, true, 1, &cfg)
    };

    let built = spec.build().expect("witnessed synthesis");
    println!(
        "extraction circuit: {} constraints | {} public inputs (kernels) | verdict = {}",
        built.cs.num_constraints(),
        built.cs.num_instance_variables() - 1,
        built.verdict
    );

    let t = Instant::now();
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    println!(
        "setup:  {:.2?}  (PK {:.1} MB, VK {:.2} KB)",
        t.elapsed(),
        prover.proving_key().serialized_size() as f64 / 1e6,
        verifier.verifying_key().serialized_size() as f64 / 1e3,
    );

    let t = Instant::now();
    let claim = prover.prove(&mut rng).expect("honest claim");
    println!(
        "prove:  {:.2?}  (Groth16 proof {} B)",
        t.elapsed(),
        claim.proof.proof.to_bytes().len()
    );
    assert!(claim.verdict(), "watermark must be recovered");

    let wire = claim.to_bytes();
    let received = SignedClaim::from_bytes(&wire).expect("claim decodes");
    let t = Instant::now();
    verifier.verify(&received).expect("ownership established");
    println!("verify: {:.2?}", t.elapsed());
    println!("ownership of the CNN established in zero knowledge ✔");
}
