//! Quickstart: the complete ZKROWNN workflow on a tiny model, in under a
//! minute — including the cross-party artifact exchange: the claim travels
//! as bytes and is verified by a party that never saw the prover's memory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use std::time::Instant;
use zkrownn::benchmarks::spec_from_keys;
use zkrownn::{Artifact, Authority, KeyRegistry, SignedClaim};
use zkrownn_deepsigns::{embed, extract, generate_keys, EmbedConfig, KeyGenConfig};
use zkrownn_gadgets::FixedConfig;
use zkrownn_groth16::VerifyingKey;
use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer, Network};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // 1. The model owner trains a network ---------------------------------
    println!("[1/5] training a small classifier …");
    let gmm = GmmConfig {
        input_shape: vec![20],
        num_classes: 4,
        mean_scale: 1.0,
        noise_std: 0.3,
    };
    let data = generate_gmm(&gmm, 160, &mut rng);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(20, 32, &mut rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(32, 4, &mut rng)),
    ]);
    net.train(&data.xs, &data.ys, 6, 0.05);
    println!(
        "      accuracy: {:.1}%",
        100.0 * net.accuracy(&data.xs, &data.ys)
    );

    // 2. … embeds a DeepSigns watermark -----------------------------------
    println!("[2/5] embedding a 16-bit DeepSigns watermark …");
    let keys = generate_keys(
        &KeyGenConfig {
            layer: 1, // first hidden layer activations
            activation_dim: 32,
            signature_bits: 16,
            num_triggers: 4,
            projection_std: 1.0,
        },
        &data,
        &mut rng,
    );
    let report = embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
    let (_, ber) = extract(&net, &keys);
    println!(
        "      post-embedding BER: {ber:.3} (wm loss {:.4}), accuracy: {:.1}%",
        report.wm_loss,
        100.0 * net.accuracy(&data.xs, &data.ys)
    );

    // 3. The authority runs the one-time setup and deals out the kits ------
    println!("[3/5] trusted setup — Authority::setup hands out the role kits …");
    let spec = spec_from_keys(&net, &keys, false, 1, &FixedConfig::default());
    let built = spec.build().expect("witnessed synthesis");
    println!(
        "      circuit {}: {} constraints, {} public inputs, {} witness vars",
        spec.circuit_id().short(),
        built.cs.num_constraints(),
        built.cs.num_instance_variables() - 1,
        built.cs.num_witness_variables()
    );
    let t = Instant::now();
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    println!(
        "      setup took {:.2?}; PK {:.2} MB, VK {:.2} KB",
        t.elapsed(),
        prover.proving_key().serialized_size() as f64 / 1e6,
        verifier.verifying_key().serialized_size() as f64 / 1e3
    );

    // 4. The owner proves ownership and ships the claim as bytes ----------
    println!("[4/5] generating the zero-knowledge ownership claim …");
    let t = Instant::now();
    let claim = prover.prove(&mut rng).expect("honest claim");
    let claim_wire = claim.to_bytes();
    let vk_wire = Artifact::to_bytes(verifier.verifying_key());
    println!(
        "      proved in {:.2?}; claim is {} bytes on the wire \
         ({}-byte Groth16 proof inside); verdict: {}",
        t.elapsed(),
        claim_wire.len(),
        claim.proof.proof.to_bytes().len(),
        claim.verdict()
    );

    // 5. A verification service reconstructs everything from bytes ---------
    println!("[5/5] third-party verification from wire bytes only …");
    let received = SignedClaim::from_bytes(&claim_wire).expect("claim decodes");
    let received_vk = <VerifyingKey as Artifact>::from_bytes(&vk_wire).expect("vk decodes");
    let mut registry = KeyRegistry::new();
    registry.register(received.circuit_id(), &received_vk);
    let t = Instant::now();
    registry.verify(&received).expect("verification succeeds");
    println!(
        "      verified in {:.2?} — ownership established ✔ \
         (key prepared {} time)",
        t.elapsed(),
        registry.preparations()
    );

    // and a negative control: a claim re-targeted at a different model must
    // fail — the weights are public inputs, so the pairing check breaks
    let mut other = received.clone();
    if let zkrownn::QuantLayer::Dense { w, .. } = &mut other.statement.model.layers[0] {
        w[0] += 1;
    }
    assert!(registry.verify(&other).is_err());
    println!("      (control: claim rejected against a different model ✔)");
}
