//! Quickstart: the complete ZKROWNN workflow on a tiny model, in under a
//! minute.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use std::time::Instant;
use zkrownn::benchmarks::spec_from_keys;
use zkrownn::{prove, setup, verify};
use zkrownn_deepsigns::{embed, extract, generate_keys, EmbedConfig, KeyGenConfig};
use zkrownn_gadgets::FixedConfig;
use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer, Network};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // 1. The model owner trains a network ---------------------------------
    println!("[1/5] training a small classifier …");
    let gmm = GmmConfig {
        input_shape: vec![20],
        num_classes: 4,
        mean_scale: 1.0,
        noise_std: 0.3,
    };
    let data = generate_gmm(&gmm, 160, &mut rng);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(20, 32, &mut rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(32, 4, &mut rng)),
    ]);
    net.train(&data.xs, &data.ys, 6, 0.05);
    println!(
        "      accuracy: {:.1}%",
        100.0 * net.accuracy(&data.xs, &data.ys)
    );

    // 2. … embeds a DeepSigns watermark -----------------------------------
    println!("[2/5] embedding a 16-bit DeepSigns watermark …");
    let keys = generate_keys(
        &KeyGenConfig {
            layer: 1, // first hidden layer activations
            activation_dim: 32,
            signature_bits: 16,
            num_triggers: 4,
            projection_std: 1.0,
        },
        &data,
        &mut rng,
    );
    let report = embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
    let (_, ber) = extract(&net, &keys);
    println!(
        "      post-embedding BER: {ber:.3} (wm loss {:.4}), accuracy: {:.1}%",
        report.wm_loss,
        100.0 * net.accuracy(&data.xs, &data.ys)
    );

    // 3. One-time trusted setup for the extraction circuit ----------------
    println!("[3/5] trusted setup (one-time, circuit-specific) …");
    let spec = spec_from_keys(&net, &keys, false, 1, &FixedConfig::default());
    let built = spec.build();
    println!(
        "      circuit: {} constraints, {} public inputs, {} witness vars",
        built.cs.num_constraints(),
        built.cs.num_instance_variables() - 1,
        built.cs.num_witness_variables()
    );
    let t = Instant::now();
    let pk = setup(&spec, &mut rng);
    println!(
        "      setup took {:.2?}; PK {:.2} MB, VK {:.2} KB",
        t.elapsed(),
        pk.serialized_size() as f64 / 1e6,
        pk.vk.serialized_size() as f64 / 1e3
    );

    // 4. The owner proves ownership (once) --------------------------------
    println!("[4/5] generating the zero-knowledge ownership proof …");
    let t = Instant::now();
    let proof = prove(&pk, &spec, &mut rng).expect("honest proof");
    println!(
        "      proved in {:.2?}; proof is {} bytes; verdict: {}",
        t.elapsed(),
        proof.proof.to_bytes().len(),
        proof.verdict
    );

    // 5. Anyone verifies in milliseconds -----------------------------------
    println!("[5/5] third-party verification …");
    let pvk = pk.vk.prepare();
    let t = Instant::now();
    zkrownn::verify_prepared(&pvk, &spec, &proof).expect("verification succeeds");
    println!(
        "      verified in {:.2?} — ownership established ✔",
        t.elapsed()
    );

    // and a negative control: different model ⇒ rejection
    let mut other = spec.clone();
    if let zkrownn::QuantLayer::Dense { w, .. } = &mut other.model.layers[0] {
        w[0] += 1;
    }
    assert!(verify(&pk.vk, &other, &proof).is_err());
    println!("      (control: proof rejected against a different model ✔)");
}
