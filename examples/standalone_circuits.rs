//! Every Table I circuit as a standalone zkSNARK — "each circuit can also
//! be used in a standalone zkSNARK due to our modular design approach"
//! (§III-B). Small instances of all seven gadget circuits are proven and
//! verified in sequence.
//!
//! ```text
//! cargo run --release --example standalone_circuits
//! ```

use rand::SeedableRng;
use std::time::Instant;
use zkrownn_ff::{Fr, PrimeField};
use zkrownn_gadgets::average::average2d_circuit;
use zkrownn_gadgets::ber::ber_circuit;
use zkrownn_gadgets::conv::{conv3d_circuit, ConvShape};
use zkrownn_gadgets::matmul::matmul_circuit;
use zkrownn_gadgets::relu::relu_circuit;
use zkrownn_gadgets::sigmoid::{sigmoid, sigmoid_fixed_reference};
use zkrownn_gadgets::threshold::threshold_circuit;
use zkrownn_gadgets::{FixedConfig, Num};
use zkrownn_groth16::{
    create_proof_from_cs, generate_parameters_from_matrices, verify_proof_prepared,
};
use zkrownn_r1cs::ProvingSynthesizer;

fn prove_and_verify(name: &str, cs: &ProvingSynthesizer<Fr>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xc0ffee);
    assert!(cs.is_satisfied().is_ok());
    let t = Instant::now();
    let pk = generate_parameters_from_matrices(&cs.to_matrices(), &mut rng);
    let setup = t.elapsed();
    let t = Instant::now();
    let proof = create_proof_from_cs(&pk, cs, &mut rng);
    let prove = t.elapsed();
    let publics: Vec<Fr> = cs.instance_assignment()[1..].to_vec();
    // round-trip the proof through its 128-byte wire form, as a standalone
    // deployment would — decoding re-validates all three points
    let proof = zkrownn_groth16::Proof::from_bytes(&proof.to_bytes()).expect("proof decodes");
    let pvk = pk.vk.prepare();
    let t = Instant::now();
    verify_proof_prepared(&pvk, &proof, &publics).expect("valid proof");
    println!(
        "{name:<18} {:>7} constraints | setup {setup:>8.2?} | prove {prove:>8.2?} | verify {:>7.2?} | proof {} B",
        cs.num_constraints(),
        t.elapsed(),
        proof.to_bytes().len()
    );
}

fn main() {
    println!("standalone zkSNARKs for each ZKROWNN circuit (reduced sizes)\n");

    // zkMatMult: private 8×8 matrices, public product
    let mut cs = ProvingSynthesizer::new();
    let a: Vec<i128> = (0..64).map(|i| i % 13 - 6).collect();
    let b: Vec<i128> = (0..64).map(|i| i % 11 - 5).collect();
    matmul_circuit(&a, &b, 8, 8, 8, 8, &mut cs).unwrap();
    prove_and_verify("zkMatMult", &cs);

    // zkConv3D: 2×8×8 input, 3 kernels of 3×3, stride 2
    let shape = ConvShape {
        in_channels: 2,
        height: 8,
        width: 8,
        out_channels: 3,
        kernel: 3,
        stride: 2,
    };
    let mut cs = ProvingSynthesizer::new();
    let input: Vec<i128> = (0..shape.in_len() as i128).map(|i| i % 9 - 4).collect();
    let kernels: Vec<i128> = (0..shape.kernel_len() as i128).map(|i| i % 7 - 3).collect();
    conv3d_circuit(&input, &kernels, &shape, 8, &mut cs).unwrap();
    prove_and_verify("zkConv3D", &cs);

    // zkReLU over 32 values
    let mut cs = ProvingSynthesizer::new();
    let vals: Vec<i128> = (-16..16).collect();
    relu_circuit(&vals, 8, &mut cs).unwrap();
    prove_and_verify("zkReLU", &cs);

    // zkAverage over an 8×8 matrix
    let mut cs = ProvingSynthesizer::new();
    let entries: Vec<i128> = (0..64).map(|i| i * 3 - 90).collect();
    average2d_circuit(&entries, 8, 8, 10, &mut cs).unwrap();
    prove_and_verify("zkAverage2D", &cs);

    // zkSigmoid over 8 fixed-point values
    let cfg = FixedConfig::default();
    let mut cs = ProvingSynthesizer::new();
    for i in 0..8 {
        let x = cfg.encode(i as f64 / 2.0 - 2.0);
        let n = Num::alloc_witness(&mut cs, || Ok(Fr::from_i128(x)), cfg.value_bits()).unwrap();
        let out = sigmoid(&n, &cfg, &mut cs).unwrap();
        assert_eq!(out.value_i128(), sigmoid_fixed_reference(x, &cfg));
        out.expose_as_output(&mut cs).unwrap();
    }
    prove_and_verify("zkSigmoid", &cs);

    // zkHardThresholding at 0.5
    let mut cs = ProvingSynthesizer::new();
    let vals: Vec<i128> = (0..32).map(|i| i * 4096 - 65536).collect();
    threshold_circuit(&vals, 1 << 15, 18, &mut cs).unwrap();
    prove_and_verify("zkHardThreshold", &cs);

    // zkBER over 32-bit signatures, θ = 1 flipped bit
    let mut cs = ProvingSynthesizer::new();
    let wm: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
    let mut extracted = wm.clone();
    extracted[7] = !extracted[7];
    let ok = ber_circuit(&wm, &extracted, 1, &mut cs).unwrap();
    assert!(ok);
    prove_and_verify("zkBER", &cs);

    println!("\nall seven circuits proven and verified ✔");
}
