//! The paper's MNIST-MLP scenario: watermark the Table II MLP, then prove
//! ownership in zero knowledge with the model weights as public input.
//!
//! ```text
//! cargo run --release --example mlp_ownership            # scaled-down (fast)
//! cargo run --release --example mlp_ownership -- --paper # full Table II size
//! ```
//!
//! The full-size run regenerates the MNIST-MLP row of Table I (≈ 2M
//! constraints; several minutes of setup + proving on a small machine).

use rand::SeedableRng;
use std::time::Instant;
use zkrownn::benchmarks::{spec_from_keys, watermarked_mlp, BenchmarkScale};
use zkrownn::{Artifact, Authority, SignedClaim};
use zkrownn_deepsigns::{embed, extract, generate_keys, EmbedConfig, KeyGenConfig};
use zkrownn_gadgets::FixedConfig;
use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer, Network};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let cfg = FixedConfig::default();

    let spec = if paper_scale {
        println!("building the FULL Table II MLP (784-512-512-10) — this takes a while …");
        let bench = watermarked_mlp(&BenchmarkScale::paper(), &mut rng);
        println!(
            "  watermark embedded: BER = {:.3}, 32-bit signature, T = 5 triggers",
            bench.embed_ber
        );
        spec_from_keys(&bench.net, &bench.keys, false, 1, &cfg)
    } else {
        println!("building a scaled-down MLP (196-64-…)  —  pass --paper for full size");
        let gmm = GmmConfig {
            input_shape: vec![196],
            num_classes: 10,
            mean_scale: 1.0,
            noise_std: 0.35,
        };
        let data = generate_gmm(&gmm, 300, &mut rng);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(196, 64, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(64, 10, &mut rng)),
        ]);
        net.train(&data.xs, &data.ys, 3, 0.02);
        let keys = generate_keys(
            &KeyGenConfig {
                layer: 1,
                activation_dim: 64,
                signature_bits: 16,
                num_triggers: 3,
                projection_std: 1.0,
            },
            &data,
            &mut rng,
        );
        let report = embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
        let (_, ber) = extract(&net, &keys);
        println!(
            "  watermark embedded: BER = {ber:.3} (loss {:.4})",
            report.wm_loss
        );
        spec_from_keys(&net, &keys, false, 1, &cfg)
    };

    let built = spec.build().expect("witnessed synthesis");
    println!(
        "extraction circuit: {} constraints | {} public inputs (weights) | verdict = {}",
        built.cs.num_constraints(),
        built.cs.num_instance_variables() - 1,
        built.verdict
    );

    let t = Instant::now();
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    let setup_time = t.elapsed();
    println!(
        "setup:  {:.2?}  (PK {:.1} MB, VK {:.1} KB — VK grows with the public weights)",
        setup_time,
        prover.proving_key().serialized_size() as f64 / 1e6,
        verifier.verifying_key().serialized_size() as f64 / 1e3,
    );

    let t = Instant::now();
    let claim = prover.prove(&mut rng).expect("honest claim");
    println!(
        "prove:  {:.2?}  (Groth16 proof {} B — constant regardless of circuit size)",
        t.elapsed(),
        claim.proof.proof.to_bytes().len()
    );
    assert!(
        claim.verdict(),
        "watermark must be recovered from the model"
    );

    // the claim crosses the process boundary as bytes
    let wire = claim.to_bytes();
    let received = SignedClaim::from_bytes(&wire).expect("claim decodes");
    let t = Instant::now();
    verifier.verify(&received).expect("ownership established");
    println!(
        "verify: {:.2?}  — any third party can run this step",
        t.elapsed()
    );
    println!("ownership of the MLP established in zero knowledge ✔");
}
