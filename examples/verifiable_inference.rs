//! Verifiable inference-as-a-service — the extension the paper's
//! conclusion points at ("these circuits can be combined to perform …
//! verifiable machine learning inference").
//!
//! A provider holds a *private* model; a client sends a *public* query and
//! receives logits plus a 128-byte proof that those logits really came from
//! the provider's committed model — without the model ever leaving the
//! provider.
//!
//! ```text
//! cargo run --release --example verifiable_inference
//! ```

use rand::SeedableRng;
use std::time::Instant;
use zkrownn::inference::InferenceSpec;
use zkrownn::QuantizedModel;
use zkrownn_gadgets::FixedConfig;
use zkrownn_groth16::{create_proof_from_cs, generate_parameters, verify_proof_prepared, Proof};
use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer, Network};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let cfg = FixedConfig::default();

    // the provider's private model
    println!("[provider] training a private 64-32-8 classifier …");
    let gmm = GmmConfig {
        input_shape: vec![64],
        num_classes: 8,
        mean_scale: 1.0,
        noise_std: 0.3,
    };
    let data = generate_gmm(&gmm, 240, &mut rng);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(64, 32, &mut rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(32, 8, &mut rng)),
    ]);
    net.train(&data.xs, &data.ys, 6, 0.03);
    println!(
        "[provider] accuracy {:.1}%",
        100.0 * net.accuracy(&data.xs, &data.ys)
    );
    let model = QuantizedModel::from_network(&net, net.layers.len() - 1, 64, &cfg);

    // the client's public query
    let query: Vec<i128> = data.xs[0]
        .data()
        .iter()
        .map(|&v| cfg.encode(v as f64))
        .collect();
    let spec = InferenceSpec {
        model,
        input: query,
    };

    println!("[setup]    building the inference circuit …");
    let built = spec.build().expect("witnessed inference synthesis");
    println!(
        "[setup]    {} constraints ({} public: query + logits)",
        built.cs.num_constraints(),
        built.cs.num_instance_variables() - 1
    );
    // the setup side consumes the circuit description itself — the
    // witness-free setup synthesizer never evaluates a value closure
    let t = Instant::now();
    let pk = generate_parameters(&spec, &mut rng).expect("setup synthesis");
    println!("[setup]    done in {:.2?}", t.elapsed());

    let t = Instant::now();
    let proof = create_proof_from_cs(&pk, &built.cs, &mut rng);
    println!(
        "[provider] inference proof generated in {:.2?} ({} bytes)",
        t.elapsed(),
        proof.to_bytes().len()
    );
    let class = built
        .logits
        .iter()
        .enumerate()
        .max_by_key(|(_, v)| **v)
        .map(|(i, _)| i)
        .unwrap();
    println!(
        "[provider] returned logits (class {class}), true label {}",
        data.ys[0]
    );

    // the proof reaches the client as bytes; decoding validates every point
    let wire = proof.to_bytes();
    let proof = Proof::from_bytes(&wire).expect("proof decodes");
    let pvk = pk.vk.prepare();
    let publics = spec.public_inputs(&built.logits);
    let t = Instant::now();
    verify_proof_prepared(&pvk, &proof, &publics).expect("client accepts");
    println!(
        "[client]   proof verified in {:.2?} — logits are authentic ✔",
        t.elapsed()
    );

    // forged logits are rejected
    let mut forged = built.logits.clone();
    forged[0] += 1;
    assert!(verify_proof_prepared(&pvk, &proof, &spec.public_inputs(&forged)).is_err());
    println!("[client]   (control: forged logits rejected ✔)");
}
