//! # zkrownn-repro — workspace meta-crate
//!
//! Re-exports the full public API of the ZKROWNN reproduction so the
//! workspace-level examples and integration tests can depend on a single
//! crate. See the individual crates for documentation:
//!
//! * [`zkrownn`] — the end-to-end ownership-proof framework (start here:
//!   `Authority::setup` → `ProverKit::prove` → `VerifierKit::verify`, with
//!   `KeyRegistry::verify_batch` for many-claim services and the
//!   `Artifact` wire format for everything that crosses a process)
//! * [`zkrownn_ledger`] — the registry as a verifiable log: an append-only
//!   Merkle accumulator over registrations with offline-checkable
//!   membership and consistency proofs
//! * [`zkrownn_store`] — the segmented on-disk key store behind streaming
//!   (memory-budgeted) trusted setup and proving
//! * [`zkrownn_deepsigns`] — DeepSigns watermark embedding/extraction
//! * [`zkrownn_nn`] — the neural-network substrate
//! * [`zkrownn_groth16`] / [`zkrownn_gadgets`] / [`zkrownn_r1cs`] — the
//!   zkSNARK stack
//! * [`zkrownn_pairing`] / [`zkrownn_curves`] / [`zkrownn_poly`] /
//!   [`zkrownn_ff`] — the cryptographic substrate

#![warn(missing_docs)]

pub use zkrownn;
pub use zkrownn_curves;
pub use zkrownn_deepsigns;
pub use zkrownn_ff;
pub use zkrownn_gadgets;
pub use zkrownn_groth16;
pub use zkrownn_ledger;
pub use zkrownn_nn;
pub use zkrownn_pairing;
pub use zkrownn_poly;
pub use zkrownn_r1cs;
pub use zkrownn_store;
